"""repro — reproduction of "Fully On-board Low-Power Localization with
Multizone Time-of-Flight Sensors on Nano-UAVs" (DATE 2023).

The package implements the paper's Monte Carlo localization stack for
nano-UAVs with multizone time-of-flight sensors, together with every
substrate the evaluation depends on: occupancy-grid maze worlds, an exact
Euclidean distance transform with fp32/fp16/uint8 storage, VL53L5CX and
flow-deck sensor models, a Crazyflie flight simulator, calibrated GAP9
performance/power/memory models, the six-sequence evaluation dataset, the
paper's metrics, and the UWB comparison baseline.

Quickstart::

    from repro import build_drone_maze_world, MclConfig, MonteCarloLocalization
    world = build_drone_maze_world()
    config = MclConfig(particle_count=4096)
    mcl = MonteCarloLocalization(world.grid, config, seed=0)

See ``examples/quickstart.py`` for a full closed loop.
"""

from .common import (
    PAPER_SEEDS,
    Pose2D,
    PrecisionMode,
    ReproError,
    RngPool,
    make_rng,
)
from .core import (
    PAPER_PARTICLE_COUNTS,
    PAPER_VARIANTS,
    ConfigSpec,
    MclConfig,
    MonteCarloLocalization,
    ParticleSet,
    PoseEstimate,
    estimate_pose,
    parallel_systematic_resample,
    systematic_resample,
)
from .core.adaptive import AdaptiveConfig, AdaptiveMcl
from .dataset import RecordedSequence, load_all_sequences, load_sequence
from .engine import FilterBackend, RunSpec, available_backends, get_backend
from .eval import (
    RunResult,
    SweepEngine,
    SweepProtocol,
    run_localization,
    run_localization_batch,
    run_sweep,
)
from .mapping import GridMapper, MapperConfig, select_goal
from .maps import (
    CellState,
    DistanceField,
    DroneWorld,
    FieldKind,
    MapBuilder,
    OccupancyGrid,
    build_drone_maze_world,
    generate_maze,
    main_drone_maze,
)
from .sensors import TofFrame, TofSensor, TofSensorSpec, ZoneStatus
from .serve import SessionManager, SessionSpec
from .soc import GAP9, Gap9PerfModel, Gap9PowerModel, MclStep
from .vehicle import CrazyflieSimulator, SimConfig

__version__ = "1.0.0"

__all__ = [
    "PAPER_SEEDS",
    "Pose2D",
    "PrecisionMode",
    "ReproError",
    "RngPool",
    "make_rng",
    "PAPER_PARTICLE_COUNTS",
    "PAPER_VARIANTS",
    "ConfigSpec",
    "MclConfig",
    "MonteCarloLocalization",
    "ParticleSet",
    "PoseEstimate",
    "estimate_pose",
    "parallel_systematic_resample",
    "systematic_resample",
    "AdaptiveConfig",
    "AdaptiveMcl",
    "GridMapper",
    "MapperConfig",
    "select_goal",
    "RecordedSequence",
    "load_all_sequences",
    "load_sequence",
    "FilterBackend",
    "RunSpec",
    "available_backends",
    "get_backend",
    "RunResult",
    "SweepEngine",
    "SweepProtocol",
    "run_localization",
    "run_localization_batch",
    "run_sweep",
    "CellState",
    "DistanceField",
    "DroneWorld",
    "FieldKind",
    "MapBuilder",
    "OccupancyGrid",
    "build_drone_maze_world",
    "generate_maze",
    "main_drone_maze",
    "TofFrame",
    "TofSensor",
    "TofSensorSpec",
    "ZoneStatus",
    "SessionManager",
    "SessionSpec",
    "GAP9",
    "Gap9PerfModel",
    "Gap9PowerModel",
    "MclStep",
    "CrazyflieSimulator",
    "SimConfig",
    "__version__",
]
