"""Odometry-only dead reckoning: the no-correction baseline.

Most prior nano-UAV navigation "only rely[s] on simple state estimation
techniques such as an inertial measurement unit and odometry", whose
"major drawback ... is their inability to compensate for drift" (paper
Sec. II).  This baseline quantifies that drawback on the same sequences:
integrate the recorded on-board odometry from the (known) start pose and
watch the error grow — the error MCL exists to bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError
from ..dataset.recorder import RecordedSequence


@dataclass
class DeadReckoningResult:
    """Error trace of pure odometry integration."""

    timestamps: np.ndarray
    position_errors: np.ndarray
    yaw_errors: np.ndarray

    @property
    def final_error_m(self) -> float:
        return float(self.position_errors[-1])

    @property
    def mean_error_m(self) -> float:
        return float(np.mean(self.position_errors))

    @property
    def max_error_m(self) -> float:
        return float(np.max(self.position_errors))


def run_dead_reckoning(sequence: RecordedSequence) -> DeadReckoningResult:
    """Integrate the recorded odometry from the true start pose.

    The baseline is given the exact initial pose (an advantage MCL's
    global localization does not get) — drift still accumulates.
    """
    if len(sequence) < 2:
        raise ConfigurationError("sequence too short for dead reckoning")

    estimate = sequence.ground_truth_pose(0)
    previous_odometry = sequence.odometry_pose(0)

    position_errors = [0.0]
    yaw_errors = [0.0]
    for index in range(1, len(sequence)):
        current = sequence.odometry_pose(index)
        increment = previous_odometry.between(current)
        previous_odometry = current
        estimate = estimate.compose(increment)
        truth = sequence.ground_truth_pose(index)
        position_errors.append(estimate.distance_to(truth))
        yaw_errors.append(estimate.heading_error_to(truth))

    return DeadReckoningResult(
        timestamps=sequence.timestamps.copy(),
        position_errors=np.array(position_errors),
        yaw_errors=np.array(yaw_errors),
    )
