"""Comparison baselines: UWB anchor localization and dead reckoning."""

from .dead_reckoning import DeadReckoningResult, run_dead_reckoning
from .uwb import (
    UwbEkf,
    UwbRanging,
    UwbRunResult,
    UwbSpec,
    corner_anchors,
    run_uwb_baseline,
)

__all__ = [
    "DeadReckoningResult",
    "run_dead_reckoning",
    "UwbEkf",
    "UwbRanging",
    "UwbRunResult",
    "UwbSpec",
    "corner_anchors",
    "run_uwb_baseline",
]
