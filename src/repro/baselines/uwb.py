"""UWB anchor-ranging localization baseline (the paper's comparators).

The paper positions its infrastructure-less MCL against UWB localization
for nano-UAVs: [7] (Niculescu et al., fixed anchors) reports 0.22 m mean
error and [6] (van der Helm et al.) 0.28 m in similar indoor volumes.
This module implements a representative anchor-based system so the
comparison rows can be regenerated:

* four UWB anchors at the corners of the flight volume,
* two-way-ranging distance measurements with Gaussian noise plus
  occasional positive NLOS (non-line-of-sight) bias — the classic UWB
  error signature indoors,
* an EKF with a constant-velocity motion model fusing the ranges.

Noise magnitudes are calibrated to land the mean error in the low-20 cm
range of the published systems.  Heading is unobservable from ranges
alone (a known limitation the paper exploits: MCL estimates yaw, UWB
cannot without extra sensors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError
from ..common.rng import make_rng


@dataclass(frozen=True)
class UwbSpec:
    """Ranging-error configuration of the simulated UWB network."""

    #: Raw two-way-ranging noise; indoor TWR through clutter sits at
    #: decimetres.  Together with the NLOS tail below this calibrates the
    #: baseline's mean error into the 0.22-0.28 m band of [6], [7].
    range_noise_sigma_m: float = 0.5
    nlos_probability: float = 0.35
    nlos_bias_max_m: float = 1.2
    update_rate_hz: float = 15.0

    def __post_init__(self) -> None:
        if self.range_noise_sigma_m <= 0:
            raise ConfigurationError("range noise must be positive")
        if not 0.0 <= self.nlos_probability <= 1.0:
            raise ConfigurationError("nlos_probability must be a probability")


def corner_anchors(width_m: float, height_m: float, margin: float = 0.2) -> np.ndarray:
    """Four anchors just outside the flight volume's corners, shape (4, 2)."""
    return np.array(
        [
            [-margin, -margin],
            [width_m + margin, -margin],
            [-margin, height_m + margin],
            [width_m + margin, height_m + margin],
        ]
    )


class UwbRanging:
    """Generates noisy anchor ranges from the true position."""

    def __init__(self, anchors: np.ndarray, spec: UwbSpec, seed: int = 0) -> None:
        anchors = np.asarray(anchors, dtype=np.float64)
        if anchors.ndim != 2 or anchors.shape[1] != 2 or anchors.shape[0] < 3:
            raise ConfigurationError("need at least 3 anchors as an (A, 2) array")
        self.anchors = anchors
        self.spec = spec
        self._rng = make_rng(seed, "uwb")

    def measure(self, x: float, y: float) -> np.ndarray:
        """One round of ranges to all anchors, with noise and NLOS bias."""
        true = np.hypot(self.anchors[:, 0] - x, self.anchors[:, 1] - y)
        noise = self._rng.normal(0.0, self.spec.range_noise_sigma_m, size=true.shape)
        nlos = self._rng.random(true.shape) < self.spec.nlos_probability
        bias = nlos * self._rng.uniform(0.0, self.spec.nlos_bias_max_m, size=true.shape)
        return np.maximum(true + noise + bias, 0.0)


class UwbEkf:
    """Constant-velocity EKF over (x, y, vx, vy) with range updates."""

    def __init__(
        self,
        anchors: np.ndarray,
        spec: UwbSpec,
        initial_xy: tuple[float, float],
        process_accel_sigma: float = 0.6,
    ) -> None:
        self.anchors = np.asarray(anchors, dtype=np.float64)
        self.spec = spec
        self._accel_sigma = process_accel_sigma
        self.state = np.array([initial_xy[0], initial_xy[1], 0.0, 0.0])
        self.covariance = np.diag([0.5, 0.5, 0.25, 0.25])

    @property
    def position(self) -> tuple[float, float]:
        return float(self.state[0]), float(self.state[1])

    def predict(self, dt: float) -> None:
        """Constant-velocity prediction over ``dt`` seconds."""
        if dt < 0:
            raise ConfigurationError("dt must be non-negative")
        transition = np.eye(4)
        transition[0, 2] = dt
        transition[1, 3] = dt
        self.state = transition @ self.state
        # White-acceleration process noise.
        q = self._accel_sigma**2
        dt2 = dt * dt
        process = q * np.array(
            [
                [dt2 * dt2 / 4, 0, dt2 * dt / 2, 0],
                [0, dt2 * dt2 / 4, 0, dt2 * dt / 2],
                [dt2 * dt / 2, 0, dt2, 0],
                [0, dt2 * dt / 2, 0, dt2],
            ]
        )
        self.covariance = transition @ self.covariance @ transition.T + process

    def update(self, ranges: np.ndarray) -> None:
        """Sequential EKF update with one range per anchor."""
        ranges = np.asarray(ranges, dtype=np.float64)
        if ranges.shape[0] != self.anchors.shape[0]:
            raise ConfigurationError("one range per anchor required")
        # Inflate measurement variance to absorb the unmodelled NLOS tail.
        spec = self.spec
        nlos_var = spec.nlos_probability * (spec.nlos_bias_max_m / 2) ** 2
        meas_var = spec.range_noise_sigma_m**2 + nlos_var
        for anchor, measured in zip(self.anchors, ranges):
            dx = self.state[0] - anchor[0]
            dy = self.state[1] - anchor[1]
            predicted = float(np.hypot(dx, dy))
            if predicted < 1e-6:
                continue
            jacobian = np.array([dx / predicted, dy / predicted, 0.0, 0.0])
            innovation = float(measured) - predicted
            s = float(jacobian @ self.covariance @ jacobian) + meas_var
            gain = (self.covariance @ jacobian) / s
            self.state = self.state + gain * innovation
            self.covariance = (
                np.eye(4) - np.outer(gain, jacobian)
            ) @ self.covariance


@dataclass
class UwbRunResult:
    """Error trace of a UWB localization run."""

    timestamps: np.ndarray
    position_errors: np.ndarray

    @property
    def mean_error_m(self) -> float:
        return float(np.mean(self.position_errors))

    @property
    def rmse_m(self) -> float:
        return float(np.sqrt(np.mean(self.position_errors**2)))


def run_uwb_baseline(
    ground_truth: np.ndarray,
    timestamps: np.ndarray,
    volume_size: tuple[float, float],
    spec: UwbSpec | None = None,
    seed: int = 0,
) -> UwbRunResult:
    """Localize a trajectory with the UWB EKF and report its errors.

    ``ground_truth`` is (T, >=2) with x, y in the first two columns; the
    EKF starts from the true initial position (UWB systems are anchored,
    so no global-localization phase exists — the comparison is generous
    to the baseline).
    """
    spec = spec or UwbSpec()
    ground_truth = np.asarray(ground_truth, dtype=np.float64)
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if ground_truth.shape[0] != timestamps.shape[0] or ground_truth.shape[0] < 2:
        raise ConfigurationError("trajectory and timestamps must align (>= 2 samples)")

    anchors = corner_anchors(*volume_size)
    ranging = UwbRanging(anchors, spec, seed=seed)
    ekf = UwbEkf(anchors, spec, (ground_truth[0, 0], ground_truth[0, 1]))

    errors = np.empty(timestamps.shape[0])
    errors[0] = 0.0
    for index in range(1, timestamps.shape[0]):
        dt = float(timestamps[index] - timestamps[index - 1])
        ekf.predict(dt)
        ekf.update(ranging.measure(ground_truth[index, 0], ground_truth[index, 1]))
        estimated_x, estimated_y = ekf.position
        errors[index] = float(
            np.hypot(
                estimated_x - ground_truth[index, 0],
                estimated_y - ground_truth[index, 1],
            )
        )
    return UwbRunResult(timestamps=timestamps, position_errors=errors)
