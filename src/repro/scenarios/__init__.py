"""Procedural scenario generation: parameterized worlds beyond the paper's maze.

Public surface:

* :class:`~repro.scenarios.base.ScenarioSpec` — the ``(family, seed,
  params)`` key, with a CLI string grammar;
* :class:`~repro.scenarios.base.Scenario` — world + tour + recorded
  flight, serializable to one deterministic ``.npz``;
* :func:`~repro.scenarios.registry.build_scenario` /
  :func:`~repro.scenarios.registry.build_scenarios` — generation with
  ``REPRO_DATA_DIR`` caching;
* :func:`~repro.scenarios.registry.available_families` /
  :func:`~repro.scenarios.registry.get_family` /
  :func:`~repro.scenarios.registry.register_family` — the registry.
"""

from .base import Scenario, ScenarioFamily, ScenarioSpec
from .fleet import FleetMemberSpec, FleetSessionDecl, FleetSpec
from .registry import (
    available_families,
    build_scenario,
    build_scenarios,
    canonical_scenario_id,
    get_family,
    register_family,
    scenario_cache_path,
    scenario_directory,
)

__all__ = [
    "FleetMemberSpec",
    "FleetSessionDecl",
    "FleetSpec",
    "Scenario",
    "ScenarioFamily",
    "ScenarioSpec",
    "available_families",
    "build_scenario",
    "build_scenarios",
    "canonical_scenario_id",
    "get_family",
    "register_family",
    "scenario_cache_path",
    "scenario_directory",
]
