"""The scenario registry: families by name, generation, and caching.

Mirrors the engine's backend registry: families register under a name,
callers resolve them with :func:`get_family`, and
:func:`build_scenario` is the one entry point that turns a
:class:`~repro.scenarios.base.ScenarioSpec` into a generated
:class:`~repro.scenarios.base.Scenario`, caching the result as a single
``.npz`` under ``REPRO_DATA_DIR/scenarios`` exactly like the canonical
sequences cache under ``REPRO_DATA_DIR/sequences``.

Because generation is deterministic and serialization is byte-stable,
the cache is *content-addressed by construction*: regenerating a spec
writes the identical bytes, so a stale-cache bug is impossible as long
as family recipes only change alongside a new family or parameter name.

The registry is also where scenario *identity* is defined:
:func:`canonical_scenario_id` normalizes any accepted spec spelling to
one stable id (sorted params, coerced values, explicit seed).  Everything
that keys results by scenario — the ``.npz`` cache and the campaign
store's cell content keys — goes through that normalization, so identity
never depends on how a spec was written or which process computed it.
"""

from __future__ import annotations

from pathlib import Path

from ..common.atomics import atomic_binary_writer
from ..common.errors import ConfigurationError
from ..common.paths import data_root
from .base import Scenario, ScenarioFamily, ScenarioSpec
from .families import BUILTIN_FAMILIES

_FAMILIES: dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> None:
    """Register a scenario family under its name (last wins)."""
    if not family.name:
        raise ConfigurationError("scenario family needs a non-empty name")
    _FAMILIES[family.name] = family


def _ensure_builtin_families() -> None:
    for family in BUILTIN_FAMILIES:
        _FAMILIES.setdefault(family.name, family)


def available_families() -> tuple[str, ...]:
    """Registered family names, registry order."""
    _ensure_builtin_families()
    return tuple(_FAMILIES)


def get_family(name: str) -> ScenarioFamily:
    """Resolve a family by name."""
    _ensure_builtin_families()
    if name not in _FAMILIES:
        valid = ", ".join(_FAMILIES)
        raise ConfigurationError(
            f"unknown scenario family {name!r}; expected one of: {valid}"
        )
    return _FAMILIES[name]


def scenario_directory() -> Path:
    """Directory holding cached scenario files (``REPRO_DATA_DIR``)."""
    return data_root() / "scenarios"


def scenario_cache_path(spec: ScenarioSpec) -> Path:
    """Where :func:`build_scenario` caches one spec."""
    return scenario_directory() / f"{spec.cache_stem}.npz"


def build_scenario(
    spec: ScenarioSpec | str, cache: bool = True
) -> Scenario:
    """Generate (or load from cache) the scenario for ``spec``.

    ``spec`` may be a :class:`ScenarioSpec` or its string form
    (``family[:seed[:k=v+k=v]]``).  With ``cache=True`` the generated
    scenario is stored under :func:`scenario_directory` and later calls
    load the ``.npz`` instead of re-simulating the flight.
    """
    if isinstance(spec, str):
        spec = ScenarioSpec.parse(spec)
    get_family(spec.family).resolve_params(spec)  # fail fast on bad params
    path = scenario_cache_path(spec)
    if cache and path.exists():
        return Scenario.load_npz(path)
    scenario = get_family(spec.family).generate(spec)
    if cache:
        # Atomic tmp+rename publish: concurrent session spin-up or
        # parallel generation can never observe a torn cache file, and
        # racing generators of the same spec write identical bytes (the
        # archive is a pure function of the spec), so last-wins is safe.
        with atomic_binary_writer(path) as handle:
            scenario.save_npz(handle)
    return scenario


def build_scenarios(
    specs: list[ScenarioSpec | str], cache: bool = True
) -> list[Scenario]:
    """Generate/load several scenarios in order."""
    return [build_scenario(spec, cache) for spec in specs]


def canonical_scenario_id(spec: ScenarioSpec | str) -> str:
    """The stable identity of a scenario, for result-store cell keys.

    Normalizes any accepted spec form (string grammar or
    :class:`ScenarioSpec`) to the canonical id — parameters sorted,
    values coerced, seed explicit — after validating the family and its
    parameters.  Two spellings of the same scenario (``"office"`` vs
    ``"office:0"``, ``"maze:1:b=2+a=1"`` vs ``"maze:1:a=1+b=2"``) map to
    one id, so campaign cell keys never depend on how the user wrote the
    spec.  The id is also byte-stable across processes and sessions
    (no ``hash()`` salting anywhere in the pipeline), which is what lets
    resumed campaigns recognize completed work.
    """
    if isinstance(spec, str):
        spec = ScenarioSpec.parse(spec)
    get_family(spec.family).resolve_params(spec)  # fail fast on bad specs
    return spec.id
