"""Fleet specifications: a mixed-family drone fleet as one declaration.

The serve layer multiplexes many concurrent localization sessions — one
per simulated drone, each with its own scenario, precision variant,
particle count and seed.  A :class:`FleetSpec` declares such a fleet the
way :class:`~repro.scenarios.base.ScenarioSpec` declares one world:
as a deterministic, parseable value that expands into concrete session
declarations.

Grammar (one member per comma-separated group)::

    scenario[@config[@particles]][*replicas][~seed0]

where ``scenario`` is any scenario-spec string
(``family[:seed[:k=v+k=v]]`` — the ``@``, ``*``, ``~`` and ``,``
characters are reserved by this grammar and cannot appear in scenario
params) and ``config`` is any config-spec string
(``variant[+key=value...]``, see :class:`repro.core.config.ConfigSpec`)
— so one fleet can mix paper variants and ablated filters.
``replicas`` expands one member into that many sessions with
consecutive filter seeds starting at ``seed0``.  Examples::

    office:3@fp32@64*4                   # 4 drones, office:3, fp32/N=64, seeds 0-3
    maze:1:cells=7@fp16qm@128*2~10       # 2 drones, seeds 10-11
    office:1@fp32@64*2,corridor:2*2      # mixed two-family fleet
    office:1@fp32+sigma=0.15@64*2        # 2 drones on an ablated filter

Expansion (:meth:`FleetSpec.declarations`) is a pure function of the
spec: session ids embed the expansion index, so a fleet's packing order
in the serve scheduler — and therefore its whole execution schedule —
is reproducible from the declaration alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigurationError
from ..core.config import ConfigSpec
from .base import ScenarioSpec
from .registry import canonical_scenario_id

#: Default serving-regime particle count (the small-N sweet spot where
#: stacked stepping beats scalar dispatch by ~3x).
DEFAULT_FLEET_PARTICLES = 64

DEFAULT_FLEET_VARIANT = "fp32"


@dataclass(frozen=True)
class FleetSessionDecl:
    """One expanded fleet member: everything a session needs to start."""

    session_id: str
    scenario: str
    variant: str
    particle_count: int
    seed: int


@dataclass(frozen=True)
class FleetMemberSpec:
    """One fleet-member group: a scenario replicated over seeds.

    ``variant`` is a config spec (``variant[+key=value...]``), stored in
    canonical form so any spelling of one configuration declares the
    same member.
    """

    scenario: str
    variant: str = DEFAULT_FLEET_VARIANT
    particle_count: int = DEFAULT_FLEET_PARTICLES
    replicas: int = 1
    seed0: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "scenario", canonical_scenario_id(self.scenario)
        )
        object.__setattr__(self, "variant", ConfigSpec.parse(self.variant).id)
        if self.particle_count < 1:
            raise ConfigurationError(
                f"particle count must be >= 1, got {self.particle_count}"
            )
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        object.__setattr__(self, "particle_count", int(self.particle_count))
        object.__setattr__(self, "replicas", int(self.replicas))
        object.__setattr__(self, "seed0", int(self.seed0))

    @staticmethod
    def parse(text: str) -> "FleetMemberSpec":
        """Parse one ``scenario[@config[@N]][*replicas][~seed0]`` group."""
        body = text.strip()
        if not body:
            raise ConfigurationError("empty fleet member")
        seed0 = 0
        if "~" in body:
            body, seed_text = body.rsplit("~", 1)
            seed0 = _parse_int(seed_text, "fleet member seed")
        replicas = 1
        if "*" in body:
            body, replica_text = body.rsplit("*", 1)
            replicas = _parse_int(replica_text, "fleet member replica count")
        parts = body.split("@")
        if len(parts) > 3:
            raise ConfigurationError(
                f"malformed fleet member {text!r}: expected "
                "scenario[@variant[@particles]][*replicas][~seed0]"
            )
        scenario = parts[0].strip()
        variant = parts[1].strip() if len(parts) > 1 else DEFAULT_FLEET_VARIANT
        particle_count = (
            _parse_int(parts[2], "fleet member particle count")
            if len(parts) > 2
            else DEFAULT_FLEET_PARTICLES
        )
        return FleetMemberSpec(
            scenario=scenario,
            variant=variant,
            particle_count=particle_count,
            replicas=replicas,
            seed0=seed0,
        )

    @property
    def id(self) -> str:
        """Canonical member string (round-trips through :meth:`parse`)."""
        base = f"{self.scenario}@{self.variant}@{self.particle_count}"
        if self.replicas != 1:
            base += f"*{self.replicas}"
        if self.seed0 != 0:
            base += f"~{self.seed0}"
        return base


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet: an ordered tuple of member groups."""

    members: tuple[FleetMemberSpec, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError("fleet needs at least one member")

    @staticmethod
    def parse(text: str) -> "FleetSpec":
        """Parse a comma-separated list of member groups."""
        members = tuple(
            FleetMemberSpec.parse(part)
            for part in text.split(",")
            if part.strip()
        )
        if not members:
            raise ConfigurationError(f"no fleet members in {text!r}")
        return FleetSpec(members)

    @staticmethod
    def mixed(
        families,
        scenario_seed: int = 1,
        variant: str = DEFAULT_FLEET_VARIANT,
        particle_count: int = DEFAULT_FLEET_PARTICLES,
        replicas: int = 1,
        flight_s: float | None = None,
    ) -> "FleetSpec":
        """A one-call mixed-family fleet: one member group per family.

        Each family contributes ``replicas`` sessions of its
        ``scenario_seed`` world; filter seeds are staggered per family
        (``family_index * replicas``) so no two sessions share a seed.
        ``flight_s`` optionally shortens every flight (useful for tests
        and benchmarks).
        """
        members = []
        for index, family in enumerate(families):
            spec = ScenarioSpec.of(
                family,
                scenario_seed,
                **({"flight_s": flight_s} if flight_s is not None else {}),
            )
            members.append(
                FleetMemberSpec(
                    scenario=spec.id,
                    variant=variant,
                    particle_count=particle_count,
                    replicas=replicas,
                    seed0=index * replicas,
                )
            )
        return FleetSpec(tuple(members))

    @property
    def id(self) -> str:
        """Canonical fleet string (round-trips through :meth:`parse`)."""
        return ",".join(member.id for member in self.members)

    def __len__(self) -> int:
        return sum(member.replicas for member in self.members)

    def scenarios(self) -> list[str]:
        """Distinct scenario ids, in first-appearance order."""
        return list(dict.fromkeys(member.scenario for member in self.members))

    def declarations(self) -> list[FleetSessionDecl]:
        """Expand into per-session declarations with deterministic ids.

        Session ids are ``{index:03d}.{scenario}.{variant}.n{N}.s{seed}``
        — the zero-padded expansion index leads, so lexicographic
        session-id order (the serve scheduler's packing order) equals
        declaration order.
        """
        declarations = []
        index = 0
        for member in self.members:
            for replica in range(member.replicas):
                seed = member.seed0 + replica
                declarations.append(
                    FleetSessionDecl(
                        session_id=(
                            f"{index:03d}.{member.scenario}."
                            f"{member.variant}.n{member.particle_count}.s{seed}"
                        ),
                        scenario=member.scenario,
                        variant=member.variant,
                        particle_count=member.particle_count,
                        seed=seed,
                    )
                )
                index += 1
        return declarations


def _parse_int(raw: str, what: str) -> int:
    try:
        return int(raw.strip())
    except ValueError as exc:
        raise ConfigurationError(f"{what} must be an integer, got {raw!r}") from exc
