"""Scenario primitives: specs, generated scenarios, and the family base.

A *scenario* is a complete synthetic workload for the localizer — an
occupancy world, a clearance-safe waypoint tour through it, and the
:class:`~repro.dataset.recorder.RecordedSequence` produced by flying that
tour on the simulated Crazyflie.  Scenarios extend the paper's single
physical maze (six recorded flights) to arbitrarily many procedurally
generated worlds, the direction pursued by the floor-plan follow-up work
(Zimmerman et al., arXiv:2310.12536).

Everything is keyed by a :class:`ScenarioSpec` — ``(family, seed,
params)`` — and generation is a pure function of that key: all
randomness flows through :func:`repro.common.rng.make_rng` streams
derived from the spec seed, no wall clock or global RNG is consulted,
and ``np.savez_compressed`` writes fixed zip timestamps.  Regenerating a
scenario from the same spec therefore produces a **byte-identical**
``.npz``, which makes generated scenarios first-class citizens of the
engine's bitwise backend-equivalence contract.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..common.errors import ConfigurationError
from ..dataset.recorder import RecordedSequence
from ..maps.occupancy import OccupancyGrid
from ..maps.planning import plan_tour, snap_to_clearance
from ..vehicle.crazyflie import CrazyflieSimulator, SimConfig

#: Planner clearance used for all scenario tours, metres (matches the
#: canonical sequences in :mod:`repro.dataset.sequences`).
SCENARIO_CLEARANCE_M = 0.15

#: Parameter value types allowed in a spec (JSON- and filename-safe).
ParamValue = int | float | str


def _coerce_param(raw: str) -> ParamValue:
    """Parse a CLI parameter value: int if possible, then float, else str."""
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


@dataclass(frozen=True)
class ScenarioSpec:
    """The deterministic key of one scenario: ``(family, seed, params)``.

    ``params`` is a canonically sorted tuple of ``(name, value)`` pairs
    overriding the family defaults; two specs with the same content
    compare (and hash, and cache) equal regardless of construction order.
    """

    family: str
    seed: int = 0
    params: tuple[tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        if not self.family:
            raise ConfigurationError("scenario spec needs a family name")
        # Canonicalize: last value wins per key, string values coerce the
        # same way the CLI grammar does (so "7" and 7 name one scenario
        # and a spec round-trips exactly through its id).
        canonical: dict[str, ParamValue] = {}
        for key, value in self.params:
            if isinstance(value, str):
                value = _coerce_param(value)
            elif isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"scenario parameter {key!r} must be int, float or str, "
                    f"got {type(value).__name__}"
                )
            canonical[str(key)] = value
        object.__setattr__(self, "params", tuple(sorted(canonical.items())))
        object.__setattr__(self, "seed", int(self.seed))

    @staticmethod
    def of(family: str, seed: int = 0, **params: ParamValue) -> "ScenarioSpec":
        """Convenience constructor from keyword parameters."""
        return ScenarioSpec(family, seed, tuple(params.items()))

    @staticmethod
    def parse(text: str) -> "ScenarioSpec":
        """Parse the CLI grammar ``family[:seed[:k=v+k=v...]]``.

        Examples: ``office``, ``maze:3``, ``maze:3:cells=7+braid=0.2``.
        """
        parts = text.strip().split(":")
        if not parts or not parts[0]:
            raise ConfigurationError(f"empty scenario spec in {text!r}")
        family = parts[0]
        seed = 0
        params: list[tuple[str, ParamValue]] = []
        if len(parts) > 1 and parts[1]:
            try:
                seed = int(parts[1])
            except ValueError as exc:
                raise ConfigurationError(
                    f"scenario seed must be an integer, got {parts[1]!r}"
                ) from exc
        if len(parts) > 2 and parts[2]:
            for item in parts[2].split("+"):
                if "=" not in item:
                    raise ConfigurationError(
                        f"scenario parameter {item!r} must look like name=value"
                    )
                key, raw = item.split("=", 1)
                params.append((key.strip(), _coerce_param(raw.strip())))
        if len(parts) > 3:
            raise ConfigurationError(f"malformed scenario spec {text!r}")
        return ScenarioSpec(family, seed, tuple(params))

    @property
    def param_dict(self) -> dict[str, ParamValue]:
        return dict(self.params)

    @property
    def id(self) -> str:
        """Canonical human-readable identifier (also the parse grammar)."""
        base = f"{self.family}:{self.seed}"
        if self.params:
            base += ":" + "+".join(f"{k}={v}" for k, v in self.params)
        return base

    @property
    def cache_stem(self) -> str:
        """Filesystem-safe cache filename stem.

        Parameter overrides are folded into a short content hash so stems
        stay bounded while remaining unique per canonical spec.
        """
        stem = f"{self.family}-s{self.seed}"
        if self.params:
            digest = hashlib.sha256(
                json.dumps(self.params, sort_keys=True).encode("utf-8")
            ).hexdigest()[:10]
            stem += f"-{digest}"
        return stem


@dataclass
class Scenario:
    """One fully generated scenario: world + tour + recorded flight."""

    spec: ScenarioSpec
    grid: OccupancyGrid
    tour: np.ndarray  # (K, 2) planned waypoints in world coordinates
    sequence: RecordedSequence

    # ------------------------------------------------------------------
    # Serialization — one .npz bundling map, tour and flight
    # ------------------------------------------------------------------
    def save_npz(self, path) -> None:
        """Write the scenario to a single compressed ``.npz`` archive.

        ``path`` may be a filesystem path or an open binary file object
        (the registry streams through an atomic tmp+rename writer).  The
        sequence payload is embedded under its native keys (see
        :meth:`RecordedSequence.to_npz_payload`); scenario-level arrays
        use a ``scenario_`` prefix.  Writing is deterministic: identical
        scenarios serialize to byte-identical files.
        """
        payload = self.sequence.to_npz_payload()
        payload["scenario_id"] = np.array(self.spec.id)
        payload["scenario_cells"] = self.grid.cells
        payload["scenario_resolution"] = np.float64(self.grid.resolution)
        payload["scenario_origin"] = np.array(
            [self.grid.origin_x, self.grid.origin_y], dtype=np.float64
        )
        payload["scenario_tour"] = np.asarray(self.tour, dtype=np.float64)
        if isinstance(path, (str, Path)):
            path = Path(path)
        np.savez_compressed(path, **payload)

    @staticmethod
    def load_npz(path: str | Path) -> "Scenario":
        """Load a scenario written by :meth:`save_npz`."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"scenario file not found: {path}")
        with np.load(path) as data:
            origin = data["scenario_origin"]
            return Scenario(
                spec=ScenarioSpec.parse(str(data["scenario_id"])),
                grid=OccupancyGrid(
                    cells=data["scenario_cells"],
                    resolution=float(data["scenario_resolution"]),
                    origin_x=float(origin[0]),
                    origin_y=float(origin[1]),
                ),
                tour=data["scenario_tour"],
                sequence=RecordedSequence.from_npz_payload(data),
            )


@dataclass(frozen=True)
class ScenarioFamily:
    """A parameterized recipe producing scenarios from ``(seed, params)``.

    Concrete families subclass and implement :meth:`layout` (world +
    tour stops); :meth:`generate` then runs the shared deterministic
    pipeline: snap stops to clearance, plan the tour, fly it on the
    simulated platform, and record the flight.  Families that transform
    a finished scenario (e.g. sensor degradation) override
    :meth:`generate` instead.
    """

    name: str = ""
    description: str = ""
    defaults: tuple[tuple[str, ParamValue], ...] = field(default=())

    def resolve_params(self, spec: ScenarioSpec) -> dict[str, ParamValue]:
        """Merge spec overrides into the family defaults (validated)."""
        merged = dict(self.defaults)
        merged.setdefault("flight_s", 60.0)
        for key, value in spec.params:
            if key not in merged:
                known = ", ".join(sorted(merged))
                raise ConfigurationError(
                    f"unknown parameter {key!r} for scenario family "
                    f"{self.name!r}; expected one of: {known}"
                )
            merged[key] = value
        return merged

    def layout(
        self, seed: int, params: dict[str, ParamValue]
    ) -> tuple[OccupancyGrid, list[tuple[float, float]]]:
        """Build the world and the raw tour stops for one seed."""
        raise NotImplementedError

    def generate(self, spec: ScenarioSpec) -> Scenario:
        """Run the full deterministic pipeline for ``spec``."""
        params = self.resolve_params(spec)
        grid, stops = self.layout(spec.seed, params)
        snapped = [
            snap_to_clearance(grid, stop, SCENARIO_CLEARANCE_M) for stop in stops
        ]
        route = plan_tour(grid, snapped, clearance_m=SCENARIO_CLEARANCE_M)
        simulator = CrazyflieSimulator(
            grid,
            route,
            seed=spec.seed,
            config=SimConfig(max_duration_s=float(params["flight_s"])),
        )
        sequence = RecordedSequence.from_sim_steps(spec.id, simulator.run())
        return Scenario(
            spec=spec,
            grid=grid,
            tour=np.asarray(route, dtype=np.float64),
            sequence=sequence,
        )
