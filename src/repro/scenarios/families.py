"""The built-in scenario families.

Five parameterized world recipes, each deterministic in ``(seed,
params)``:

* ``maze``     — braided recursive-backtracker mazes at any cell pitch
  (the generator behind the paper's artificial map extensions);
* ``office``   — floor plans: a central corridor flanked by rooms with
  doorways, the layout class of the floor-plan follow-up work;
* ``corridor`` — long serpentine corridors with seed-jittered turn gaps
  and wall stubs (feature-sparse, aliasing-heavy);
* ``hall``     — open cluttered halls: one big room with scattered
  boxes (feature-poor open space, the opposite regime of the maze);
* ``degraded`` — any base family re-recorded through the
  :mod:`repro.dataset.augment` failure injectors (sensor dropout
  bursts, degraded odometry, range bias).

Layout randomness is drawn exclusively from named
:func:`repro.common.rng.make_rng` streams, so every family is a pure
function of its spec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError
from ..common.rng import make_rng
from ..dataset.augment import (
    with_degraded_odometry,
    with_dropout_bursts,
    with_range_bias,
)
from ..maps.builder import MapBuilder
from ..maps.maze import generate_maze
from ..maps.occupancy import CellState, PAPER_RESOLUTION
from .base import ParamValue, Scenario, ScenarioFamily, ScenarioSpec

#: Minimum corridor pitch that keeps routes flyable at the scenario
#: clearance (rotor radius + margin on both sides of a 0.05 m wall).
_MIN_PITCH_M = 0.5


@dataclass(frozen=True)
class MazeFamily(ScenarioFamily):
    """Procedural braided mazes at parameterized size and cell pitch."""

    name: str = "maze"
    description: str = "braided recursive-backtracker maze (size_m, cells, braid)"
    defaults: tuple[tuple[str, ParamValue], ...] = (
        ("size_m", 4.0),
        ("cells", 6),
        ("braid", 0.35),
        ("flight_s", 60.0),
    )

    def layout(self, seed, params):
        size_m = float(params["size_m"])
        cells = int(params["cells"])
        pitch = size_m / cells
        if pitch < _MIN_PITCH_M:
            raise ConfigurationError(
                f"maze pitch {pitch:.2f} m is too narrow to fly; "
                f"need size_m/cells >= {_MIN_PITCH_M}"
            )
        grid = generate_maze(
            size_m=size_m,
            cells=cells,
            seed=seed,
            braid_fraction=float(params["braid"]),
        )
        rng = make_rng(seed, "scenario-maze-stops")

        def center(row: int, col: int) -> tuple[float, float]:
            return ((col + 0.5) * pitch, (row + 0.5) * pitch)

        last = cells - 1
        mid = cells // 2
        interior = center(
            int(rng.integers(1, max(last, 2))), int(rng.integers(1, max(last, 2)))
        )
        # A perimeter sweep with a center excursion: corners in order,
        # the middle cell between them, plus one seed-chosen interior cell.
        stops = [
            center(0, 0),
            center(0, last),
            center(mid, mid),
            center(last, last),
            interior,
            center(last, 0),
            center(0, 0),
        ]
        return grid, stops


@dataclass(frozen=True)
class OfficeFamily(ScenarioFamily):
    """Office floor plan: central corridor, rooms with doorways."""

    name: str = "office"
    description: str = "corridor-and-rooms floor plan with doorways"
    defaults: tuple[tuple[str, ParamValue], ...] = (
        ("width_m", 6.0),
        ("height_m", 4.5),
        ("rooms_per_side", 3),
        ("corridor_w", 1.2),
        ("door_w", 0.7),
        ("flight_s", 60.0),
    )

    def layout(self, seed, params):
        width = float(params["width_m"])
        height = float(params["height_m"])
        rooms = int(params["rooms_per_side"])
        corridor_w = float(params["corridor_w"])
        door_w = float(params["door_w"])
        if rooms < 1:
            raise ConfigurationError("office needs at least one room per side")
        room_depth = (height - corridor_w) / 2.0
        room_width = width / rooms
        if room_depth < 2 * _MIN_PITCH_M or room_width < door_w + 0.4:
            raise ConfigurationError("office rooms too small for the clearance")
        rng = make_rng(seed, "scenario-office-layout")

        builder = MapBuilder(width, height, PAPER_RESOLUTION)
        builder.fill_rect(0.0, 0.0, width, height, CellState.FREE)
        builder.add_border()
        corridor_lo = room_depth
        corridor_hi = room_depth + corridor_w

        # Seed-jittered room dividers on each side.
        dividers = {}
        for side in ("bottom", "top"):
            edges = [0.0]
            for index in range(1, rooms):
                jitter = float(rng.uniform(-0.15, 0.15)) * room_width
                edges.append(index * room_width + jitter)
            edges.append(width)
            dividers[side] = edges
            y0, y1 = (0.0, corridor_lo) if side == "bottom" else (corridor_hi, height)
            for x in edges[1:-1]:
                builder.add_wall(x, y0, x, y1)

        # Corridor-facing walls with one doorway per room.
        for side, wall_y in (("bottom", corridor_lo), ("top", corridor_hi)):
            edges = dividers[side]
            for left, right in zip(edges[:-1], edges[1:]):
                margin = 0.2
                lo = left + margin
                hi = right - margin - door_w
                door = float(rng.uniform(lo, max(hi, lo + 1e-6)))
                builder.add_wall(left, wall_y, door, wall_y)
                builder.add_wall(door + door_w, wall_y, right, wall_y)

        grid = builder.build()
        corridor_y = (corridor_lo + corridor_hi) / 2.0

        # Tour: west corridor end, every bottom room, east end, every top
        # room — A* routes through the doorways.
        stops = [(0.4, corridor_y)]
        for left, right in zip(dividers["bottom"][:-1], dividers["bottom"][1:]):
            stops.append(((left + right) / 2.0, room_depth / 2.0))
        stops.append((width - 0.4, corridor_y))
        top_edges = dividers["top"]
        for left, right in zip(top_edges[:-1], top_edges[1:]):
            stops.append(((left + right) / 2.0, corridor_hi + room_depth / 2.0))
        stops.append((0.4, corridor_y))
        return grid, stops


@dataclass(frozen=True)
class CorridorFamily(ScenarioFamily):
    """Long serpentine corridor with seed-jittered gaps and stubs."""

    name: str = "corridor"
    description: str = "serpentine corridor legs with jittered turn gaps"
    defaults: tuple[tuple[str, ParamValue], ...] = (
        ("legs", 4),
        ("leg_len_m", 6.0),
        ("corridor_w", 0.9),
        ("flight_s", 60.0),
    )

    def layout(self, seed, params):
        legs = int(params["legs"])
        leg_len = float(params["leg_len_m"])
        corridor_w = float(params["corridor_w"])
        if legs < 2:
            raise ConfigurationError("corridor needs at least two legs")
        if corridor_w < 2 * _MIN_PITCH_M * 0.9:
            raise ConfigurationError("corridor too narrow for the clearance")
        rng = make_rng(seed, "scenario-corridor-layout")

        width = leg_len
        height = legs * corridor_w
        builder = MapBuilder(width, height, PAPER_RESOLUTION)
        builder.fill_rect(0.0, 0.0, width, height, CellState.FREE)
        builder.add_border()

        # Separator walls between legs, open at alternating ends with a
        # seed-jittered gap length.
        for index in range(1, legs):
            y = index * corridor_w
            gap = corridor_w * float(rng.uniform(0.9, 1.3))
            if index % 2 == 1:  # open at the east end
                builder.add_wall(0.0, y, width - gap, y)
            else:  # open at the west end
                builder.add_wall(gap, y, width, y)

        # One short stub per leg at a seed-chosen position breaks the
        # translational symmetry the localizer would otherwise alias on.
        for index in range(legs):
            stub_x = float(rng.uniform(1.5, width - 1.5))
            y0 = index * corridor_w
            if index % 2 == 0:
                builder.add_wall(stub_x, y0, stub_x, y0 + corridor_w * 0.45)
            else:
                y1 = y0 + corridor_w
                builder.add_wall(stub_x, y1 - corridor_w * 0.45, stub_x, y1)

        grid = builder.build()
        stops = []
        for index in range(legs):
            y = (index + 0.5) * corridor_w
            west, east = (0.5, y), (width - 0.5, y)
            stops.extend([west, east] if index % 2 == 0 else [east, west])
        return grid, stops


@dataclass(frozen=True)
class HallFamily(ScenarioFamily):
    """Open cluttered hall: one big room with scattered boxes."""

    name: str = "hall"
    description: str = "open hall cluttered with randomly placed boxes"
    defaults: tuple[tuple[str, ParamValue], ...] = (
        ("size_m", 6.0),
        ("boxes", 8),
        ("box_min_m", 0.3),
        ("box_max_m", 0.7),
        ("stops", 6),
        ("flight_s", 60.0),
    )

    def layout(self, seed, params):
        size = float(params["size_m"])
        boxes = int(params["boxes"])
        box_min = float(params["box_min_m"])
        box_max = float(params["box_max_m"])
        stop_count = int(params["stops"])
        if size < 3.0:
            raise ConfigurationError("hall must be at least 3 m across")
        if not 0.0 < box_min <= box_max:
            raise ConfigurationError("invalid hall box size range")
        rng = make_rng(seed, "scenario-hall-layout")

        builder = MapBuilder(size, size, PAPER_RESOLUTION)
        builder.fill_rect(0.0, 0.0, size, size, CellState.FREE)
        builder.add_border()

        # Boxes on a seed-jittered grid: a random subset of lattice cells
        # each holds one box jittered inside its cell.  Unlike rejection
        # sampling this places *exactly* ``boxes`` obstacles (the spec
        # must describe the generated world) and keeps a guaranteed free
        # corridor between any two boxes and along the walls.
        margin = box_max / 2.0 + 0.6
        usable = size - 2 * margin
        if boxes > 0:
            lattice = int(np.ceil(np.sqrt(boxes)))
            cell = usable / lattice
            if cell < box_max + 0.4:
                raise ConfigurationError(
                    f"cannot fit {boxes} boxes of up to {box_max} m in a "
                    f"{size} m hall; reduce boxes or box_max_m"
                )
            picks = rng.permutation(lattice * lattice)[:boxes]
            for pick in picks:
                row, col = divmod(int(pick), lattice)
                half_w = float(rng.uniform(box_min, box_max)) / 2.0
                half_h = float(rng.uniform(box_min, box_max)) / 2.0
                slack_x = cell / 2.0 - half_w - 0.2
                slack_y = cell / 2.0 - half_h - 0.2
                cx = margin + (col + 0.5) * cell + float(
                    rng.uniform(-slack_x, slack_x)
                )
                cy = margin + (row + 0.5) * cell + float(
                    rng.uniform(-slack_y, slack_y)
                )
                builder.add_box(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

        grid = builder.build()
        # Stops sampled uniformly over the hall; snapping later moves any
        # that landed on or near a box.
        stops = [
            (float(rng.uniform(0.5, size - 0.5)), float(rng.uniform(0.5, size - 0.5)))
            for __ in range(max(stop_count, 2))
        ]
        return grid, stops


@dataclass(frozen=True)
class DegradedFamily(ScenarioFamily):
    """Any base family re-recorded through the failure injectors."""

    name: str = "degraded"
    description: str = "base family + sensor dropout, odometry drift, range bias"
    defaults: tuple[tuple[str, ParamValue], ...] = (
        ("base", "maze"),
        ("bursts", 2),
        ("burst_frames", 12),
        ("odo_noise", 0.005),
        ("odo_scale", 0.03),
        ("bias_m", 0.03),
        ("flight_s", 60.0),
    )

    def generate(self, spec: ScenarioSpec) -> Scenario:
        from .registry import get_family  # local import: registry imports us

        params = self.resolve_params(spec)
        base_family = get_family(str(params["base"]))
        if isinstance(base_family, DegradedFamily):
            raise ConfigurationError("degraded scenarios cannot nest")
        base = base_family.generate(
            ScenarioSpec.of(base_family.name, spec.seed, flight_s=params["flight_s"])
        )
        sequence = base.sequence
        bursts = int(params["bursts"])
        if bursts > 0:
            sequence = with_dropout_bursts(
                sequence,
                burst_count=bursts,
                burst_frames=int(params["burst_frames"]),
                seed=spec.seed,
            )
        sequence = with_degraded_odometry(
            sequence,
            extra_noise_xy=float(params["odo_noise"]),
            extra_scale_error=float(params["odo_scale"]),
            seed=spec.seed,
        )
        sequence = with_range_bias(sequence, bias_m=float(params["bias_m"]))
        sequence.name = spec.id  # the augment suffixes are spec-implied
        return Scenario(
            spec=spec, grid=base.grid, tour=base.tour, sequence=sequence
        )


#: The built-in families, in registry order.
BUILTIN_FAMILIES: tuple[ScenarioFamily, ...] = (
    MazeFamily(),
    OfficeFamily(),
    CorridorFamily(),
    HallFamily(),
    DegradedFamily(),
)
