"""Unified telemetry: metrics, spans, and event logs with zero bitwise footprint.

This package is the one observability seam of the reproduction.  Every
layer (engine step stages, sweep/campaign cells, the serving gateway)
reports through the module-level accessors here; nothing else in
``src/repro`` may call ``time.perf_counter`` directly (a tier-1 lint
test enforces this, with :mod:`repro.eval.bench` exempted as the
benchmark harness).

The contract
------------
* **Telemetry never touches numerics.**  No function in this package
  reads or advances an RNG, mutates a numpy array owned by the engine,
  or feeds a measured value back into the pipeline.  Traces with
  telemetry enabled are bitwise identical to telemetry disabled —
  asserted by the golden cells and the serve fleet-vs-solo suite.
* **Disabled means free.**  When telemetry is off, every accessor
  returns a shared null singleton (``NULL_COUNTER``, ``NULL_SPAN``, ...)
  whose methods are empty: no allocation, no clock reads, no dict
  growth on hot paths.
* **Deterministic shape.**  Histogram bucket bounds are fixed module
  constants; snapshots sort every section, so snapshot JSON is
  canonical and mergeable across processes.

Enabling
--------
``REPRO_OBS=1`` turns on the in-process registry (metrics + spans).
``REPRO_OBS_DIR=/path`` additionally opens the JSONL event log there
(and implies ``REPRO_OBS``).  The ``repro`` CLI exposes the same pair
as global ``--obs`` / ``--obs-dir`` flags.  Programmatic control:
:func:`enable` / :func:`disable` / :func:`reset`.

The process-global registry serves in-process instrumentation; the
online gateway additionally owns a private always-on :class:`LocalObs`
backing its ``stats`` and ``metrics`` verbs (per-server counters must
not cross-talk when tests host several gateways in one process).
"""

from __future__ import annotations

import os

from .events import EventLog, read_events
from .metrics import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS_S,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    Registry,
    merge_snapshots,
    render_prometheus,
    render_table,
)
from .tracing import NULL_SPAN, SpanRecorder, Timer

__all__ = [
    "enabled",
    "enable",
    "disable",
    "reset",
    "counter",
    "gauge",
    "histogram",
    "span",
    "timed",
    "record_span",
    "event",
    "snapshot",
    "events_dir",
    "LocalObs",
    "Registry",
    "SpanRecorder",
    "Timer",
    "EventLog",
    "read_events",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS_S",
    "COUNT_BOUNDS",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "merge_snapshots",
    "render_prometheus",
    "render_table",
]

_TRUTHY = ("1", "true", "on", "yes")

# Process-global state.  ``_configured`` latches the first env read so
# programmatic enable/disable is never clobbered by a late accessor.
_configured = False
_registry: Registry | None = None
_recorder: SpanRecorder | None = None
_events: EventLog | None = None


def _configure_from_env() -> None:
    global _configured
    _configured = True
    directory = os.environ.get("REPRO_OBS_DIR", "").strip()
    flag = os.environ.get("REPRO_OBS", "").strip().lower()
    if directory or flag in _TRUTHY:
        enable(directory or None)


def enabled() -> bool:
    """Is the process-global telemetry registry active?"""
    if not _configured:
        _configure_from_env()
    return _registry is not None


def enable(directory: str | os.PathLike | None = None) -> Registry:
    """Turn on the global registry (idempotent); optionally log events to ``directory``."""
    global _configured, _registry, _recorder, _events
    _configured = True
    if _registry is None:
        _registry = Registry()
        _recorder = SpanRecorder(_registry)
    if directory is not None and (
        _events is None or _events.directory != EventLog(directory).directory
    ):
        if _events is not None:
            _events.close()
        _events = EventLog(directory)
    return _registry


def disable() -> None:
    """Turn telemetry off; accessors hand out null singletons again."""
    global _configured, _registry, _recorder, _events
    _configured = True
    _registry = None
    _recorder = None
    if _events is not None:
        _events.close()
        _events = None


def reset() -> None:
    """Drop all state and re-read the environment on next use (tests)."""
    global _configured, _registry, _recorder, _events
    if _events is not None:
        _events.close()
    _configured = False
    _registry = None
    _recorder = None
    _events = None


def counter(name: str):
    """The named global counter, or the shared no-op when disabled."""
    if not _configured:
        _configure_from_env()
    registry = _registry
    return NULL_COUNTER if registry is None else registry.counter(name)


def gauge(name: str):
    """The named global gauge, or the shared no-op when disabled."""
    if not _configured:
        _configure_from_env()
    registry = _registry
    return NULL_GAUGE if registry is None else registry.gauge(name)


def histogram(name: str, bounds=LATENCY_BOUNDS_S):
    """The named global histogram, or the shared no-op when disabled."""
    if not _configured:
        _configure_from_env()
    registry = _registry
    return NULL_HISTOGRAM if registry is None else registry.histogram(name, bounds)


def span(name: str):
    """A wall-time span context manager; shared no-op singleton when disabled.

    Hot-path callers must not rely on ``elapsed_s`` (the null span pins
    it to 0.0) — use :func:`timed` when the duration is needed as a
    value.
    """
    if not _configured:
        _configure_from_env()
    recorder = _recorder
    return NULL_SPAN if recorder is None else recorder.span(name)


def record_span(name: str, seconds: float) -> None:
    """Record an externally measured duration under a span name."""
    if not _configured:
        _configure_from_env()
    if _recorder is not None:
        _recorder.record(name, seconds)


def timed(name: str) -> Timer:
    """An always-on timer whose duration is also recorded when enabled.

    This is the sanctioned replacement for raw ``perf_counter`` pairs:
    ``with obs.timed("cli.serve_sim") as t: ...`` then read
    ``t.elapsed_s``.  The measurement always happens (call sites need
    the value); only the span recording is conditional.
    """
    return Timer(name, on_done=record_span)


def event(name: str, **fields) -> None:
    """Emit a structured JSONL event (no-op unless an obs dir is set)."""
    if not _configured:
        _configure_from_env()
    if _events is not None:
        _events.emit(name, **fields)


def events_dir():
    """The active event-log directory, or ``None``."""
    if not _configured:
        _configure_from_env()
    return None if _events is None else _events.directory


def snapshot() -> dict:
    """Canonical snapshot of the global registry (empty sections when off)."""
    if not _configured:
        _configure_from_env()
    if _registry is None:
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}
    return _registry.snapshot()


class LocalObs:
    """A private always-on registry + span recorder bundle.

    The online gateway's ``stats`` counters predate this subsystem and
    were always unconditional; they live here (one ``LocalObs`` per
    server instance) so several servers in one process keep independent
    counts while sharing the metric implementations and snapshot shape
    with the global registry.
    """

    __slots__ = ("registry", "recorder")

    def __init__(self) -> None:
        self.registry = Registry()
        self.recorder = SpanRecorder(self.registry)

    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str, bounds=LATENCY_BOUNDS_S) -> Histogram:
        return self.registry.histogram(name, bounds)

    def span(self, name: str):
        return self.recorder.span(name)

    def snapshot(self) -> dict:
        return self.registry.snapshot()
