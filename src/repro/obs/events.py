"""Structured JSONL event log.

Events are discrete, low-rate occurrences worth a permanent record —
session admissions, migration handoffs, campaign cell completions — as
opposed to metrics (aggregates) and spans (durations).  Each event is
one canonical-JSON line appended to ``events-<pid>.jsonl`` under the
directory given by ``REPRO_OBS_DIR`` (or ``repro --obs-dir``); the
per-pid file name keeps multi-process sweeps from interleaving writes.

The log is write-only from the pipeline's point of view: nothing in the
numeric path ever reads it back, so (like all of :mod:`repro.obs`) it
has zero bitwise footprint.  Timestamps are wall-clock telemetry only.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO, Iterator

__all__ = ["EventLog", "read_events"]


class EventLog:
    """Append-only JSONL writer, lazily opened, one file per process."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self._handle: IO[str] | None = None

    @property
    def path(self) -> Path:
        return self.directory / f"events-{os.getpid()}.jsonl"

    def emit(self, name: str, **fields) -> None:
        """Append one event line: ``{"event": name, "ts": ..., **fields}``."""
        handle = self._handle
        if handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            handle = self._handle = open(self.path, "a", encoding="utf-8")
        record = dict(fields)
        record["event"] = name
        record["ts"] = time.time()
        handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_events(directory: str | os.PathLike) -> Iterator[dict]:
    """Yield every event from every ``events-*.jsonl`` file in ``directory``.

    Files are visited in sorted name order; malformed lines are skipped
    (a crashed process may leave a torn final line).
    """
    root = Path(directory)
    for path in sorted(root.glob("events-*.jsonl")):
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record
