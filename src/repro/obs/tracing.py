"""Nestable wall-time spans over a metrics registry.

A span measures the wall-clock duration of a code region with
``time.perf_counter()`` and aggregates per span name (count / total /
min / max) into the owning :class:`~repro.obs.metrics.Registry`.  Spans
nest — the recorder keeps an explicit stack so instrumentation can ask
for the current path — but aggregation is by the span's own name: the
naming scheme (``layer.component.stage``, see ``docs/observability.md``)
already encodes the hierarchy.

Like every part of the obs subsystem, spans never touch RNG or numeric
state: a span reads the clock, adds Python floats, and nothing else.
Timing values must never flow back into the pipeline they measure.

:class:`Timer` is the *always-on* variant for call sites that need the
measured duration functionally (benchmark reports, migration blackout
accounting in :class:`~repro.serve.migrate.MoveResult`): it measures
regardless of whether telemetry is enabled and only the recording side
is conditional.  Hot paths use :func:`repro.obs.span` instead, whose
disabled form is a shared no-op singleton.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

__all__ = ["Span", "SpanStats", "SpanRecorder", "Timer", "NULL_SPAN"]


class SpanStats:
    """Aggregated wall-time statistics for one span name."""

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class Span:
    """Context manager measuring one region; created by :class:`SpanRecorder`."""

    __slots__ = ("name", "_recorder", "_start", "elapsed_s")

    def __init__(self, name: str, recorder: "SpanRecorder") -> None:
        self.name = name
        self._recorder = recorder
        self._start = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "Span":
        self._recorder._stack.append(self.name)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_s = perf_counter() - self._start
        stack = self._recorder._stack
        if stack and stack[-1] == self.name:
            stack.pop()
        self._recorder.record(self.name, self.elapsed_s)


class SpanRecorder:
    """Aggregates spans into a registry's span section."""

    def __init__(self, registry) -> None:
        self._stats: dict[str, SpanStats] = registry._spans  # type: ignore[assignment]
        self._stack: list[str] = []

    def span(self, name: str) -> Span:
        return Span(name, self)

    def record(self, name: str, seconds: float) -> None:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SpanStats(name)
        stats.add(seconds)

    def current_path(self) -> tuple[str, ...]:
        """The names of the currently open spans, outermost first."""
        return tuple(self._stack)

    def depth(self) -> int:
        return len(self._stack)


class _NullSpan:
    """Shared no-op span: the disabled hot path allocates nothing.

    Reentrancy is safe because enter/exit carry no state; ``elapsed_s``
    is always 0.0 (hot-path callers must not depend on it — use
    :class:`Timer` when the duration is needed functionally).
    """

    __slots__ = ()

    name = "null"
    elapsed_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class Timer:
    """Always-on wall-time measurement with optional recording.

    The one sanctioned home for ``perf_counter`` timing outside
    :mod:`repro.obs`: call sites that need the elapsed time as a value
    (CLI summaries, benchmark rows, ``MoveResult.blackout_s``) wrap the
    region in a ``Timer`` and read ``elapsed_s`` after exit.  When
    telemetry is enabled the duration is also recorded as a span.
    """

    __slots__ = ("name", "_on_done", "_start", "elapsed_s")

    def __init__(
        self, name: str, on_done: Callable[[str, float], None] | None = None
    ) -> None:
        self.name = name
        self._on_done = on_done
        self._start = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> "Timer":
        self._start = perf_counter()
        return self

    def stop(self) -> float:
        self.elapsed_s = perf_counter() - self._start
        if self._on_done is not None:
            self._on_done(self.name, self.elapsed_s)
        return self.elapsed_s
