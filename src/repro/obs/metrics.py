"""Telemetry metric primitives: counters, gauges, histograms.

Design constraints (the subsystem contract, see ``docs/observability.md``):

* **Zero bitwise footprint** — nothing in this module reads or writes
  RNG state, numpy arrays owned by the engine, or any value that feeds
  the numeric pipeline.  Metrics are pure Python scalars updated from
  instrumentation seams; enabling telemetry must leave every trace
  bit-for-bit identical.
* **Deterministic shape** — histogram bucket bounds are fixed module
  constants, never derived from observed data, so snapshots from any
  two processes (or the same process on different days) are directly
  mergeable and comparable.
* **Cheap when off** — the ``Null*`` singletons implement the same
  surface with empty methods and ``__slots__ = ()``; the disabled path
  allocates nothing per call.

The :class:`Registry` here is instantiable on purpose: the process
global one (see :mod:`repro.obs`) serves engine/sweep instrumentation,
while each :class:`~repro.serve.online.OnlineServer` owns a private
always-on registry backing its ``stats``/``metrics`` verbs (several
gateways can share one test process without cross-talking counters).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "LATENCY_BOUNDS_S",
    "COUNT_BOUNDS",
    "Registry",
    "render_table",
    "render_prometheus",
]

#: Fixed latency bucket upper bounds, in seconds.  1-2.5-5 decades from
#: 10 microseconds to 10 seconds; chosen once, never data-dependent.
LATENCY_BOUNDS_S: tuple[float, ...] = (
    1e-05, 2.5e-05, 5e-05,
    1e-04, 2.5e-04, 5e-04,
    1e-03, 2.5e-03, 5e-03,
    1e-02, 2.5e-02, 5e-02,
    1e-01, 2.5e-01, 5e-01,
    1.0, 2.5, 5.0, 10.0,
)

#: Fixed bucket upper bounds for small nonnegative counts (frames per
#: tick, queue depths sampled as distributions, ...).
COUNT_BOUNDS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


class Counter:
    """A monotonically increasing scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """A point-in-time scalar (queue depth, occupancy, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> int | float:
        return self.value


class Histogram:
    """Fixed-bound bucketed distribution with bounded memory.

    ``bounds`` are inclusive upper bounds; one implicit overflow bucket
    (``+inf``) rides at the end, so ``len(counts) == len(bounds) + 1``.
    Observations update ``count``/``total``/``min``/``max`` and one
    bucket — O(log buckets), no sample retention (this is the "fixed
    reservoir" that replaced the unbounded ``drive_fleet`` latency
    list).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS_S) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: int | float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate quantile from bucket counts.

        Returns the upper bound of the bucket holding the q-th sample
        (clamped to the observed ``max`` so the overflow bucket and the
        tail report a finite value).  Good enough for latency reporting;
        exact samples are deliberately not retained.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        rank = q * (self.count - 1)
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen > rank:
                if i >= len(self.bounds):
                    return self.max
                return min(self.bounds[i], self.max)
        return self.max

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class _NullCounter:
    __slots__ = ()

    name = "null"
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def snapshot(self) -> int:
        return 0


class _NullGauge:
    __slots__ = ()

    name = "null"
    value = 0

    def set(self, value: int | float) -> None:
        pass

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: int | float = 1) -> None:
        pass

    def snapshot(self) -> int:
        return 0


class _NullHistogram:
    __slots__ = ()

    name = "null"
    bounds: tuple[float, ...] = ()
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: int | float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}


#: Shared no-op instances — the disabled path hands these out so hot
#: loops never allocate.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class Registry:
    """A named collection of metrics with a canonical snapshot.

    Lookups create on first use; names are flat dotted strings
    (``layer.component.metric``).  ``snapshot()`` sorts every section by
    name so two snapshots of identical activity are byte-identical
    canonical JSON.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, object] = {}  # populated by tracing.SpanRecorder

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BOUNDS_S
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    def snapshot(self) -> dict:
        return {
            "counters": {k: self._counters[k].snapshot() for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].snapshot() for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].snapshot() for k in sorted(self._histograms)
            },
            "spans": {k: self._spans[k].snapshot() for k in sorted(self._spans)},
        }


def merge_snapshots(*snapshots: Mapping) -> dict:
    """Merge snapshot dicts section-wise (later snapshots win on name)."""
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}
    for snap in snapshots:
        for section in merged:
            entries = snap.get(section, {})
            merged[section].update(entries)
    for section in merged:
        merged[section] = dict(sorted(merged[section].items()))
    return merged


def render_table(snapshot: Mapping) -> str:
    """Render a snapshot as the sorted plain-text table of ``repro obs report``."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    spans = snapshot.get("spans", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    if gauges:
        lines.append("gauges:")
        width = max(len(k) for k in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]}")
    if histograms:
        lines.append("histograms:")
        width = max(len(k) for k in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            if not h or not h.get("count"):
                lines.append(f"  {name:<{width}}  count=0")
                continue
            lines.append(
                f"  {name:<{width}}  count={h['count']} mean={h['mean']:.6g} "
                f"min={h['min']:.6g} max={h['max']:.6g}"
            )
    if spans:
        lines.append("spans:")
        width = max(len(k) for k in spans)
        for name in sorted(spans):
            s = spans[name]
            lines.append(
                f"  {name:<{width}}  count={s['count']} total_s={s['total_s']:.6g} "
                f"mean_s={s['mean_s']:.6g} max_s={s['max_s']:.6g}"
            )
    if not lines:
        lines.append("(empty snapshot)")
    return "\n".join(lines)


def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_prometheus(snapshot: Mapping) -> str:
    """Render a snapshot in the Prometheus text exposition format (v0.0.4)."""
    out: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} counter")
        out.append(f"{prom} {_prom_value(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} gauge")
        out.append(f"{prom} {_prom_value(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        h = snapshot["histograms"][name]
        if not h:
            continue
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, bucket in zip(
            list(h["bounds"]) + [float("inf")], h["counts"]
        ):
            cumulative += bucket
            out.append(f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}')
        out.append(f"{prom}_sum {_prom_value(h['total'])}")
        out.append(f"{prom}_count {h['count']}")
    for name in sorted(snapshot.get("spans", {})):
        s = snapshot["spans"][name]
        prom = _prom_name(name + "_span")
        out.append(f"# TYPE {prom}_seconds summary")
        out.append(f"{prom}_seconds_sum {_prom_value(s['total_s'])}")
        out.append(f"{prom}_seconds_count {s['count']}")
    return "\n".join(out) + ("\n" if out else "")
