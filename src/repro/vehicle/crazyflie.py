"""Full simulated Crazyflie platform: dynamics + sensors + estimator.

This is the substrate that replaces the physical drone of the paper's
experiments (Sec. III-A): a planar vehicle flying waypoint routes through
the maze while

* the Flow-deck + gyro feed the drifting on-board odometry estimate
  (``OdometryIntegrator``), and
* two multizone ToF sensors (forward/backward) produce 8x8 zone frames at
  15 Hz against the ground-truth occupancy grid.

The simulator emits one :class:`SimStep` per ToF frame time — ground-truth
pose, current odometry estimate and both sensor frames — which is exactly
the record layout of the paper's dataset (ToF measurements, internal state
estimate, mocap ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D
from ..common.rng import RngPool
from ..maps.occupancy import OccupancyGrid
from ..sensors.flow import FlowDeck, FlowDeckSpec
from ..sensors.imu import Gyro, GyroSpec
from ..sensors.tof import TofFrame, default_sensor_pair
from .controller import ControllerGains, WaypointController
from .dynamics import DynamicsLimits, PlanarDynamics
from .estimator import OdometryIntegrator


@dataclass(frozen=True)
class SimConfig:
    """Timing and flight parameters of the platform simulation."""

    physics_rate_hz: float = 100.0
    tof_rate_hz: float = 15.0
    flight_height_m: float = 0.5
    max_duration_s: float = 120.0

    def __post_init__(self) -> None:
        if self.physics_rate_hz < self.tof_rate_hz:
            raise ConfigurationError("physics must run at least as fast as the ToF")
        if self.tof_rate_hz <= 0:
            raise ConfigurationError("tof rate must be positive")
        if self.max_duration_s <= 0:
            raise ConfigurationError("max duration must be positive")


@dataclass
class SimStep:
    """One recorded sample at a ToF frame instant."""

    timestamp: float
    ground_truth: Pose2D
    odometry: Pose2D
    frames: list[TofFrame] = field(default_factory=list)


class CrazyflieSimulator:
    """Flies a waypoint route and yields the paper-format sensor record."""

    def __init__(
        self,
        grid: OccupancyGrid,
        waypoints: list[tuple[float, float]],
        seed: int,
        config: SimConfig | None = None,
        gains: ControllerGains | None = None,
        limits: DynamicsLimits | None = None,
        flow_spec: FlowDeckSpec | None = None,
        gyro_spec: GyroSpec | None = None,
    ) -> None:
        if len(waypoints) < 2:
            raise ConfigurationError("need at least two waypoints to fly a route")
        self.grid = grid
        self.config = config or SimConfig()
        pool = RngPool(seed)

        start = waypoints[0]
        heading = float(
            np.arctan2(waypoints[1][1] - start[1], waypoints[1][0] - start[0])
        )
        self._start_pose = Pose2D(start[0], start[1], heading)
        self.dynamics = PlanarDynamics(self._start_pose, limits)
        self.controller = WaypointController(waypoints[1:], gains)
        self.flow = FlowDeck(
            flow_spec or FlowDeckSpec(),
            pool.get("flow"),
            flight_height_m=self.config.flight_height_m,
        )
        self.gyro = Gyro(gyro_spec or GyroSpec(), pool.get("gyro"))
        self.estimator = OdometryIntegrator(Pose2D.identity())
        front, rear = default_sensor_pair(pool.get("tof-front"), pool.get("tof-rear"))
        self.sensors = [front, rear]

    @property
    def start_pose(self) -> Pose2D:
        """Ground-truth pose at t = 0."""
        return self._start_pose

    def run(self) -> list[SimStep]:
        """Fly the route; returns one :class:`SimStep` per ToF frame.

        The flight ends when the route completes or ``max_duration_s``
        elapses, whichever comes first.  A first sample is emitted at
        t = 0 so localization can start before any motion.
        """
        config = self.config
        dt = 1.0 / config.physics_rate_hz
        frame_interval = 1.0 / config.tof_rate_hz

        steps: list[SimStep] = []
        now = 0.0
        next_frame_time = 0.0
        max_ticks = int(round(config.max_duration_s * config.physics_rate_hz))

        for __ in range(max_ticks + 1):
            if now >= next_frame_time - 1e-9:
                steps.append(self._record(now))
                next_frame_time += frame_interval
            if self.controller.finished:
                break
            state = self.dynamics.state
            command = self.controller.command(state.pose)
            state = self.dynamics.step(command, dt)
            flow_sample = self.flow.measure(state.vx, state.vy, dt, now + dt)
            gyro_sample = self.gyro.measure(state.yaw_rate, dt, now + dt)
            self.estimator.update(flow_sample, gyro_sample, dt)
            now += dt
        return steps

    def _record(self, timestamp: float) -> SimStep:
        pose = self.dynamics.state.pose
        frames = [
            sensor.measure(self.grid, pose, timestamp) for sensor in self.sensors
        ]
        return SimStep(
            timestamp=timestamp,
            ground_truth=pose,
            odometry=self.estimator.estimate,
            frames=frames,
        )
