"""Simulated nano-UAV platform: dynamics, control, estimation, assembly."""

from .controller import ControllerGains, WaypointController
from .crazyflie import CrazyflieSimulator, SimConfig, SimStep
from .dynamics import BodyCommand, DynamicsLimits, PlanarDynamics, VehicleState
from .estimator import OdometryIntegrator

__all__ = [
    "ControllerGains",
    "WaypointController",
    "CrazyflieSimulator",
    "SimConfig",
    "SimStep",
    "BodyCommand",
    "DynamicsLimits",
    "PlanarDynamics",
    "VehicleState",
    "OdometryIntegrator",
]
