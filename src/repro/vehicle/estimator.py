"""On-board state estimation: the drifting odometry MCL must correct.

On the real Crazyflie, an extended Kalman filter fuses the Flow-deck's
optical-flow velocities with the IMU into an "internal state estimate"
(paper Sec. III-A1).  Without global corrections this estimate drifts —
scale error, flow bias and gyro bias accumulate into unbounded position
and heading error, which is exactly the failure mode the paper's MCL
corrects.

:class:`OdometryIntegrator` reproduces that behaviour: it dead-reckons the
corrupted flow velocities and gyro rates into a pose estimate.  MCL
consumes the estimate via :meth:`odometry_increment`, which returns the
body-frame SE(2) increment since the previous query — the odometry input
``u_t`` of the motion model.
"""

from __future__ import annotations

from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D
from ..sensors.flow import FlowMeasurement
from ..sensors.imu import GyroMeasurement


class OdometryIntegrator:
    """Dead-reckons flow + gyro samples into a drifting pose estimate."""

    def __init__(self, initial_pose: Pose2D = Pose2D.identity()) -> None:
        self._estimate = initial_pose
        self._last_emitted = initial_pose

    @property
    def estimate(self) -> Pose2D:
        """Current dead-reckoned pose estimate (odometry frame)."""
        return self._estimate

    def update(
        self, flow: FlowMeasurement, gyro: GyroMeasurement, dt: float
    ) -> Pose2D:
        """Integrate one synchronized flow + gyro sample pair over ``dt``."""
        if dt < 0:
            raise ConfigurationError(f"dt must be non-negative, got {dt}")
        if dt == 0:
            return self._estimate
        # Body-frame displacement with midpoint heading integration.
        dtheta = gyro.yaw_rate * dt
        dx = flow.vx * dt
        dy = flow.vy * dt
        half = Pose2D(0.0, 0.0, dtheta / 2.0)
        increment = half.compose(Pose2D(dx, dy, dtheta / 2.0))
        self._estimate = self._estimate.compose(increment)
        return self._estimate

    def odometry_increment(self) -> Pose2D:
        """Body-frame increment since the previous call (the MCL input u_t).

        The first call returns the increment since construction.  Between
        consecutive calls the increments compose exactly back to the
        estimate trajectory, so no motion information is lost or double
        counted.
        """
        increment = self._last_emitted.between(self._estimate)
        self._last_emitted = self._estimate
        return increment
