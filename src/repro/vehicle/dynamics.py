"""Planar kinematics of the nano-UAV at fixed flight height.

The paper's drone "flies at a fixed height and localizes in a 2D grid map"
(Sec. III-C1), so the simulator needs only the planar degrees of freedom.
A quadrotor is holonomic in the plane: the model integrates commanded
body-frame velocities (forward, lateral) and yaw rate through a first-order
lag that stands in for the Crazyflie's attitude/velocity control loops,
with saturation at the platform's practical limits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D, wrap_angle


@dataclass(frozen=True)
class DynamicsLimits:
    """Velocity envelope of the simulated Crazyflie."""

    max_speed_mps: float = 0.6
    max_yaw_rate_rps: float = 1.8
    #: Time constant of the velocity-tracking lag, seconds.
    velocity_tau_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_speed_mps <= 0 or self.max_yaw_rate_rps <= 0:
            raise ConfigurationError("dynamics limits must be positive")
        if self.velocity_tau_s <= 0:
            raise ConfigurationError("velocity_tau_s must be positive")


@dataclass
class BodyCommand:
    """Commanded body-frame velocities."""

    vx: float = 0.0
    vy: float = 0.0
    yaw_rate: float = 0.0


@dataclass
class VehicleState:
    """True planar state: pose plus realized body-frame velocities."""

    pose: Pose2D
    vx: float = 0.0
    vy: float = 0.0
    yaw_rate: float = 0.0


class PlanarDynamics:
    """First-order planar dynamics with velocity saturation.

    ``step`` advances the true state by ``dt``: realized velocities chase
    the (saturated) command through an exponential lag, then the pose
    integrates the realized velocities in the body frame.
    """

    def __init__(self, initial_pose: Pose2D, limits: DynamicsLimits | None = None) -> None:
        self.limits = limits or DynamicsLimits()
        self.state = VehicleState(pose=initial_pose)

    def _saturate(self, command: BodyCommand) -> tuple[float, float, float]:
        limits = self.limits
        speed = float(np.hypot(command.vx, command.vy))
        scale = 1.0 if speed <= limits.max_speed_mps else limits.max_speed_mps / speed
        yaw_rate = float(
            np.clip(command.yaw_rate, -limits.max_yaw_rate_rps, limits.max_yaw_rate_rps)
        )
        return command.vx * scale, command.vy * scale, yaw_rate

    def step(self, command: BodyCommand, dt: float) -> VehicleState:
        """Advance the true state by ``dt`` seconds under ``command``."""
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        target_vx, target_vy, target_yaw_rate = self._saturate(command)
        state = self.state
        # Exponential approach to the commanded velocity.
        alpha = 1.0 - float(np.exp(-dt / self.limits.velocity_tau_s))
        vx = state.vx + alpha * (target_vx - state.vx)
        vy = state.vy + alpha * (target_vy - state.vy)
        yaw_rate = state.yaw_rate + alpha * (target_yaw_rate - state.yaw_rate)

        pose = state.pose
        # Integrate in the body frame (midpoint heading for less arc error).
        heading = pose.theta + 0.5 * yaw_rate * dt
        cos_h = float(np.cos(heading))
        sin_h = float(np.sin(heading))
        new_pose = Pose2D(
            pose.x + (cos_h * vx - sin_h * vy) * dt,
            pose.y + (sin_h * vx + cos_h * vy) * dt,
            wrap_angle(pose.theta + yaw_rate * dt),
        )
        self.state = VehicleState(pose=new_pose, vx=vx, vy=vy, yaw_rate=yaw_rate)
        return self.state
