"""Waypoint-following controller for the scripted evaluation flights.

The paper's sequences were flown by steering the drone through the maze;
the simulator reproduces them as waypoint routes (produced by
``repro.maps.planning``) tracked by this controller.  The drone yaws to
face its direction of travel — that matters for localization because the
forward/backward ToF pair observes along the heading axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D, angle_difference
from .dynamics import BodyCommand


@dataclass(frozen=True)
class ControllerGains:
    """Tuning of the waypoint tracker."""

    cruise_speed_mps: float = 0.4
    #: Proportional gain from heading error to yaw rate.
    yaw_gain: float = 2.5
    #: Heading error above which forward motion pauses (turn in place).
    align_threshold_rad: float = math.radians(40.0)
    #: Distance at which a waypoint counts as reached.
    capture_radius_m: float = 0.12
    #: Slow down within this distance of the current waypoint.
    approach_radius_m: float = 0.35

    def __post_init__(self) -> None:
        if self.cruise_speed_mps <= 0:
            raise ConfigurationError("cruise speed must be positive")
        if self.capture_radius_m <= 0 or self.approach_radius_m <= 0:
            raise ConfigurationError("radii must be positive")


class WaypointController:
    """Tracks an ordered list of world waypoints.

    The controller is deliberately simple — turn toward the active
    waypoint, fly forward, shrink speed on approach — because the goal is
    realistic trajectories, not control performance.
    """

    def __init__(
        self, waypoints: list[tuple[float, float]], gains: ControllerGains | None = None
    ) -> None:
        if len(waypoints) == 0:
            raise ConfigurationError("controller needs at least one waypoint")
        self.waypoints = [(float(x), float(y)) for x, y in waypoints]
        self.gains = gains or ControllerGains()
        self._index = 0

    @property
    def active_index(self) -> int:
        """Index of the waypoint currently being tracked."""
        return self._index

    @property
    def finished(self) -> bool:
        """True once the final waypoint has been captured."""
        return self._index >= len(self.waypoints)

    def command(self, pose: Pose2D) -> BodyCommand:
        """Compute the body-frame velocity command for the current pose."""
        gains = self.gains
        while not self.finished:
            target_x, target_y = self.waypoints[self._index]
            distance = math.hypot(target_x - pose.x, target_y - pose.y)
            if distance > gains.capture_radius_m:
                break
            self._index += 1
        if self.finished:
            return BodyCommand(0.0, 0.0, 0.0)

        target_x, target_y = self.waypoints[self._index]
        distance = math.hypot(target_x - pose.x, target_y - pose.y)
        bearing = math.atan2(target_y - pose.y, target_x - pose.x)
        heading_error = angle_difference(bearing, pose.theta)

        yaw_rate = gains.yaw_gain * heading_error
        if abs(heading_error) > gains.align_threshold_rad:
            # Rotate in place until roughly aligned.
            return BodyCommand(0.0, 0.0, yaw_rate)

        speed = gains.cruise_speed_mps
        if distance < gains.approach_radius_m:
            speed *= max(distance / gains.approach_radius_m, 0.25)
        return BodyCommand(speed, 0.0, yaw_rate)
