"""Aligned text tables for the benchmark harness output.

Every bench prints the same rows the paper's tables report; this module
keeps the formatting consistent (fixed-width columns, a title rule, and
an optional footnote line like Table I's "particles stored in L2").
"""

from __future__ import annotations

from ..common.errors import EvaluationError


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str = "",
    footnote: str = "",
) -> str:
    """Render rows as a fixed-width text table.

    Cell values are stringified with ``str``; floats should be
    pre-formatted by the caller so each table controls its precision.
    """
    if not headers:
        raise EvaluationError("table needs headers")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise EvaluationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in text_rows)) if text_rows else len(header)
        for i, header in enumerate(headers)
    ]

    def line(cells: list[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    rule = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(rule))
    lines.append(line(headers))
    lines.append(rule)
    lines.extend(line(row) for row in text_rows)
    if footnote:
        lines.append(rule)
        lines.append(footnote)
    return "\n".join(lines)


def format_matrix(
    row_header: str,
    row_names: list[str],
    col_names: list[str],
    cells: dict[tuple[str, str], object],
    title: str = "",
    footnote: str = "",
    missing: str = "n/a",
) -> str:
    """Render a (row x column) matrix of pre-formatted values as a table.

    ``cells`` maps ``(row_name, col_name)`` to the displayed value;
    absent keys render as ``missing``.  This is the shape every sweep
    and campaign table shares — variants down the side, particle counts
    across the top — so the sweep CLI and ``campaign report`` both build
    on it.
    """
    rows = [
        [row] + [str(cells.get((row, col), missing)) for col in col_names]
        for row in row_names
    ]
    return format_table(
        [row_header] + list(col_names), rows, title=title, footnote=footnote
    )
