"""Aligned text tables for the benchmark harness output.

Every bench prints the same rows the paper's tables report; this module
keeps the formatting consistent (fixed-width columns, a title rule, and
an optional footnote line like Table I's "particles stored in L2").
"""

from __future__ import annotations

from ..common.errors import EvaluationError


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str = "",
    footnote: str = "",
) -> str:
    """Render rows as a fixed-width text table.

    Cell values are stringified with ``str``; floats should be
    pre-formatted by the caller so each table controls its precision.
    """
    if not headers:
        raise EvaluationError("table needs headers")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise EvaluationError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in text_rows)) if text_rows else len(header)
        for i, header in enumerate(headers)
    ]

    def line(cells: list[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    rule = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(rule))
    lines.append(line(headers))
    lines.append(rule)
    lines.extend(line(row) for row in text_rows)
    if footnote:
        lines.append(rule)
        lines.append(footnote)
    return "\n".join(lines)
