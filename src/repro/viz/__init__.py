"""Terminal visualization: ASCII plots, text tables, CSV export."""

from .ascii import line_plot, render_map_with_path
from .export import export_series, results_directory, write_csv
from .tables import format_matrix, format_table

__all__ = [
    "line_plot",
    "render_map_with_path",
    "export_series",
    "results_directory",
    "write_csv",
    "format_matrix",
    "format_table",
]
