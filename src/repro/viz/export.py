"""CSV export of figure series and tables.

Each benchmark writes its regenerated data under ``results/`` so the
figures can be re-plotted with any external tool; the CSV layout is one
row per point with explicit series labels, which round-trips cleanly.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from ..common.errors import EvaluationError


def results_directory() -> Path:
    """Directory for exported benchmark results (env ``REPRO_RESULTS_DIR``)."""
    root = os.environ.get("REPRO_RESULTS_DIR", os.path.join(os.getcwd(), "results"))
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_csv(path: str | Path, headers: list[str], rows: list[list[object]]) -> Path:
    """Write one CSV file; returns the resolved path."""
    if not headers:
        raise EvaluationError("CSV needs headers")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def export_series(
    name: str,
    series: dict[str, tuple[list[float], list[float]]],
    x_label: str = "x",
    y_label: str = "y",
) -> Path:
    """Export named (x, y) series to ``results/<name>.csv``."""
    rows: list[list[object]] = []
    for label, (xs, ys) in series.items():
        for x, y in zip(xs, ys):
            rows.append([label, x, y])
    return write_csv(
        results_directory() / f"{name}.csv", ["series", x_label, y_label], rows
    )
