"""ASCII rendering: line plots and map/trajectory views.

The benchmark harness regenerates the paper's figures as data series; in
a terminal-only environment (no matplotlib installed here) these helpers
render them as ASCII so the *shape* of each figure — who wins, where the
crossovers sit — is visible directly in the bench output.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import EvaluationError
from ..maps.occupancy import CellState, OccupancyGrid

#: Glyphs cycled across plotted series.
SERIES_GLYPHS = "ox+*#@%&"


def line_plot(
    series: dict[str, tuple[list[float], list[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    log_x: bool = False,
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one shared-axis character canvas.

    NaN y-values are skipped.  With ``log_x`` the x axis is log2-scaled,
    matching the paper's particle-count axes.
    """
    if not series:
        raise EvaluationError("line_plot needs at least one series")

    points: list[tuple[float, float, str]] = []
    legend: list[str] = []
    for index, (name, (xs, ys)) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        legend.append(f"{glyph}={name}")
        for x, y in zip(xs, ys):
            if y is None or (isinstance(y, float) and math.isnan(y)):
                continue
            points.append((math.log2(x) if log_x else float(x), float(y), glyph))
    if not points:
        raise EvaluationError("no finite points to plot")

    x_values = [p[0] for p in points]
    y_values = [p[1] for p in points]
    x_lo, x_hi = min(x_values), max(x_values)
    y_lo, y_hi = min(y_values), max(y_values)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    y_pad = 0.05 * (y_hi - y_lo)
    y_lo -= y_pad
    y_hi += y_pad

    canvas = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        canvas[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    x_lo_text = f"{(2**x_lo if log_x else x_lo):.3g}"
    x_hi_text = f"{(2**x_hi if log_x else x_hi):.3g}"
    gap = width - len(x_lo_text) - len(x_hi_text)
    lines.append(f"{' ' * label_width}  {x_lo_text}{' ' * max(gap, 1)}{x_hi_text}")
    lines.append(f"{' ' * label_width}  legend: {'  '.join(legend)}")
    return "\n".join(lines)


def render_map_with_path(
    grid: OccupancyGrid,
    paths: dict[str, np.ndarray],
    stride: int = 2,
) -> str:
    """Render the occupancy grid with one or more trajectories overlaid.

    ``paths`` maps a single-character glyph to an (T, >=2) array of world
    x, y positions.  ``stride`` downsamples the grid for terminal width.
    """
    if stride < 1:
        raise EvaluationError("stride must be >= 1")
    lookup = {
        int(CellState.FREE): ".",
        int(CellState.OCCUPIED): "#",
        int(CellState.UNKNOWN): " ",
    }
    rows = [[lookup[int(v)] for v in row[::stride]] for row in grid.cells[::stride]]

    for glyph, path in paths.items():
        if len(glyph) != 1:
            raise EvaluationError(f"path glyph must be one character, got {glyph!r}")
        path = np.asarray(path)
        for x, y in path[:, :2]:
            row, col = grid.world_to_grid(float(x), float(y))
            row = int(row) // stride
            col = int(col) // stride
            if 0 <= row < len(rows) and 0 <= col < len(rows[0]):
                rows[row][col] = glyph

    return "\n".join("".join(r) for r in rows[::-1])
