"""Flow-deck v2 model: PMW3901 optical flow + VL53L1x height (Sec. III-A1).

The Flow-deck measures apparent image motion over the floor, which at a
known height converts to body-frame translational velocity.  Those velocity
measurements feed the Crazyflie's on-board state estimate, whose slow drift
is precisely what map-based MCL must correct.

Error model (the drivers of real optical-flow drift):

* a fixed multiplicative **scale error** per flight (height estimation and
  lens calibration bias),
* additive white noise per sample,
* a slowly varying random-walk **bias** (texture-dependent systematic
  error as the drone crosses different floor patches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import SensorError

#: Combined power draw of the Flow-deck sensors is part of the Crazyflie
#: electronics budget in the paper's accounting; kept for reference.
FLOW_DECK_POWER_W = 0.040


@dataclass(frozen=True)
class FlowDeckSpec:
    """Noise/drift configuration of the optical-flow velocity sensor."""

    #: Standard deviation of the fixed per-flight scale error (unitless).
    scale_error_sigma: float = 0.015
    #: White noise on each velocity sample, m/s.
    velocity_noise_sigma: float = 0.02
    #: Random-walk step of the velocity bias, (m/s)/sqrt(s).
    bias_walk_sigma: float = 0.004
    #: Hard cap on the accumulated bias magnitude, m/s.
    bias_limit: float = 0.06
    #: Sample rate of the flow measurements, Hz.
    rate_hz: float = 100.0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise SensorError(f"flow rate must be positive, got {self.rate_hz}")
        if self.velocity_noise_sigma < 0 or self.bias_walk_sigma < 0:
            raise SensorError("noise sigmas must be non-negative")


@dataclass
class FlowMeasurement:
    """One body-frame velocity sample from the flow deck."""

    timestamp: float
    vx: float
    vy: float
    height_m: float


class FlowDeck:
    """Simulated optical-flow velocity sensor.

    ``measure`` converts the true body-frame velocity into a corrupted
    measurement; the scale factor is drawn once at construction (per
    flight) and the bias evolves by a bounded random walk.
    """

    def __init__(
        self,
        spec: FlowDeckSpec,
        rng: np.random.Generator,
        flight_height_m: float = 0.5,
    ) -> None:
        if flight_height_m <= 0:
            raise SensorError(f"flight height must be positive, got {flight_height_m}")
        self.spec = spec
        self.flight_height_m = float(flight_height_m)
        self._rng = rng
        self._scale = 1.0 + rng.normal(0.0, spec.scale_error_sigma)
        self._bias = np.zeros(2, dtype=np.float64)

    @property
    def scale(self) -> float:
        """The per-flight multiplicative scale error (for tests/analysis)."""
        return self._scale

    def measure(
        self, true_vx: float, true_vy: float, dt: float, timestamp: float
    ) -> FlowMeasurement:
        """Corrupt a true body-frame velocity into a flow measurement.

        ``dt`` is the time since the previous sample and scales the bias
        random-walk step.
        """
        if dt < 0:
            raise SensorError(f"dt must be non-negative, got {dt}")
        spec = self.spec
        if dt > 0:
            step = self._rng.normal(0.0, spec.bias_walk_sigma * np.sqrt(dt), size=2)
            self._bias = np.clip(self._bias + step, -spec.bias_limit, spec.bias_limit)
        noise = self._rng.normal(0.0, spec.velocity_noise_sigma, size=2)
        measured = self._scale * np.array([true_vx, true_vy]) + self._bias + noise
        height = self.flight_height_m + self._rng.normal(0.0, 0.005)
        return FlowMeasurement(
            timestamp=timestamp,
            vx=float(measured[0]),
            vy=float(measured[1]),
            height_m=float(height),
        )
