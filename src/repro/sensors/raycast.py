"""Grid raycasting used to synthesize ground-truth range measurements.

The physical VL53L5CX measures the time of flight of photons to the first
reflective surface.  In simulation, the equivalent is casting a ray through
the occupancy grid until it enters an OCCUPIED cell; the traversal uses the
classic DDA / Amanatides–Woo stepping so each cell along the ray is visited
exactly once.

UNKNOWN cells are transparent: the real maze stands inside a larger room,
and the paper's sensor sees through unmapped space until a physical wall —
rays leaving the structured area simply run out of range.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import MapError
from ..maps.occupancy import CellState, OccupancyGrid


def cast_ray(
    grid: OccupancyGrid,
    start_x: float,
    start_y: float,
    angle: float,
    max_range: float,
) -> float:
    """Distance from start to the first OCCUPIED cell along ``angle``.

    Returns ``max_range`` when no obstacle is hit within range (the caller
    models the sensor's out-of-range behaviour).  A start point inside an
    occupied cell returns 0.
    """
    if max_range <= 0:
        raise MapError(f"max_range must be positive, got {max_range}")

    row, col = grid.world_to_grid(start_x, start_y)
    row = int(row)
    col = int(col)
    if bool(grid.in_bounds(row, col)) and grid.cells[row, col] == CellState.OCCUPIED:
        return 0.0

    dir_x = math.cos(angle)
    dir_y = math.sin(angle)
    res = grid.resolution

    # Distance along the ray to the first vertical / horizontal cell border.
    if dir_x > 0:
        step_col = 1
        t_max_x = ((grid.origin_x + (col + 1) * res) - start_x) / dir_x
        t_delta_x = res / dir_x
    elif dir_x < 0:
        step_col = -1
        t_max_x = ((grid.origin_x + col * res) - start_x) / dir_x
        t_delta_x = -res / dir_x
    else:
        step_col = 0
        t_max_x = math.inf
        t_delta_x = math.inf

    if dir_y > 0:
        step_row = 1
        t_max_y = ((grid.origin_y + (row + 1) * res) - start_y) / dir_y
        t_delta_y = res / dir_y
    elif dir_y < 0:
        step_row = -1
        t_max_y = ((grid.origin_y + row * res) - start_y) / dir_y
        t_delta_y = -res / dir_y
    else:
        step_row = 0
        t_max_y = math.inf
        t_delta_y = math.inf

    travelled = 0.0
    while travelled <= max_range:
        if t_max_x < t_max_y:
            travelled = t_max_x
            t_max_x += t_delta_x
            col += step_col
        else:
            travelled = t_max_y
            t_max_y += t_delta_y
            row += step_row
        if travelled > max_range:
            break
        if not (0 <= row < grid.rows and 0 <= col < grid.cols):
            # Outside the map: nothing left to hit along this ray.
            break
        if grid.cells[row, col] == CellState.OCCUPIED:
            return float(travelled)
    return float(max_range)


def cast_rays(
    grid: OccupancyGrid,
    start_x: float,
    start_y: float,
    angles: np.ndarray,
    max_range: float,
) -> np.ndarray:
    """Cast many rays from one origin; returns an array of ranges.

    This is the ground-truth generator for a full ToF zone matrix: one ray
    per zone azimuth.
    """
    angles = np.asarray(angles, dtype=np.float64)
    out = np.empty(angles.shape, dtype=np.float64)
    flat = angles.reshape(-1)
    flat_out = out.reshape(-1)
    for index in range(flat.size):
        flat_out[index] = cast_ray(grid, start_x, start_y, float(flat[index]), max_range)
    return out


def incidence_angle(
    grid: OccupancyGrid,
    start_x: float,
    start_y: float,
    angle: float,
    hit_range: float,
) -> float:
    """Estimate the ray's incidence angle at the hit surface, in radians.

    0 means perpendicular (best reflectivity), pi/2 grazing.  The surface
    normal is estimated from the local occupancy gradient around the hit
    cell; used by the ToF model to raise error flags on grazing hits, which
    is a documented VL53L5CX failure mode.

    Returns 0 for out-of-range "hits" (no surface).
    """
    if hit_range >= 0.999 * 1e9:
        return 0.0
    hit_x = start_x + math.cos(angle) * hit_range
    hit_y = start_y + math.sin(angle) * hit_range
    row, col = grid.world_to_grid(hit_x, hit_y)
    row = int(row)
    col = int(col)
    occupied = grid.occupied_mask()
    # Occupancy gradient via central differences on a 3x3 window.
    grad_col = 0.0
    grad_row = 0.0
    for d_row in (-1, 0, 1):
        for d_col in (-1, 0, 1):
            r = min(max(row + d_row, 0), grid.rows - 1)
            c = min(max(col + d_col, 0), grid.cols - 1)
            if occupied[r, c]:
                grad_row += d_row
                grad_col += d_col
    norm = math.hypot(grad_col, grad_row)
    if norm < 1e-9:
        return 0.0
    # Normal points from the surface toward free space (opposite gradient).
    normal_x = -grad_col / norm
    normal_y = -grad_row / norm
    # Incidence: angle between the reverse ray direction and the normal.
    reverse_x = -math.cos(angle)
    reverse_y = -math.sin(angle)
    cosine = max(-1.0, min(1.0, normal_x * reverse_x + normal_y * reverse_y))
    return math.acos(abs(cosine))
