"""Sensor models: multizone ToF, optical flow, gyro, and grid raycasting."""

from .flow import FLOW_DECK_POWER_W, FlowDeck, FlowDeckSpec, FlowMeasurement
from .imu import Gyro, GyroMeasurement, GyroSpec
from .raycast import cast_ray, cast_rays, incidence_angle
from .tof import (
    VL53L5CX_FOV_DEG,
    VL53L5CX_MAX_RANGE_M,
    VL53L5CX_POWER_W,
    TofFrame,
    TofSensor,
    TofSensorSpec,
    ZoneStatus,
    default_sensor_pair,
)

__all__ = [
    "FLOW_DECK_POWER_W",
    "FlowDeck",
    "FlowDeckSpec",
    "FlowMeasurement",
    "Gyro",
    "GyroMeasurement",
    "GyroSpec",
    "cast_ray",
    "cast_rays",
    "incidence_angle",
    "VL53L5CX_FOV_DEG",
    "VL53L5CX_MAX_RANGE_M",
    "VL53L5CX_POWER_W",
    "TofFrame",
    "TofSensor",
    "TofSensorSpec",
    "ZoneStatus",
    "default_sensor_pair",
]
