"""VL53L5CX multizone time-of-flight sensor model (paper Sec. III-A2).

The VL53L5CX provides a matrix of either 8x8 zones at up to 15 Hz or 4x4
zones at up to 60 Hz over a 45° x 45° field of view, with roughly 4 m
maximum range.  For each zone it reports a distance **and an error flag**
"which gets raised when out of range measurements or interference are
detected" (paper).  The Multizone-ToF-deck mounts up to two sensors, one
forward and one backward facing.

The model reproduces all of that:

* zone geometry: per-column azimuths spanning the horizontal FoV (the drone
  localizes in 2-D, so all rows of a column share an azimuth; rows differ
  in elevation, which at fixed flight height only modulates the error-flag
  probability — outer rows clip floor/ceiling more often),
* ranging noise: additive base noise plus a range-proportional term,
* error flags: out-of-range, random interference dropout, grazing-incidence
  hits beyond a limit angle,
* frame-rate bookkeeping for the 8x8@15 Hz / 4x4@60 Hz trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from ..common.errors import SensorError
from ..common.geometry import Pose2D
from ..maps.occupancy import OccupancyGrid
from .raycast import cast_ray, incidence_angle

#: Horizontal/vertical field of view of the VL53L5CX in degrees.
VL53L5CX_FOV_DEG = 45.0

#: Maximum usable range of the VL53L5CX in metres.
VL53L5CX_MAX_RANGE_M = 4.0

#: Power draw of one sensor in watts (paper Sec. IV-E: 320 mW each).
VL53L5CX_POWER_W = 0.320


class ZoneStatus(IntEnum):
    """Per-zone measurement status; VALID is the only usable code."""

    VALID = 0
    OUT_OF_RANGE = 1
    INTERFERENCE = 2
    GRAZING = 3


@dataclass(frozen=True)
class TofSensorSpec:
    """Static configuration of one multizone ToF sensor.

    ``zones_per_side`` of 8 limits the frame rate to 15 Hz; 4 allows 60 Hz
    (paper Sec. III-A2).  ``yaw_offset`` is the mounting yaw on the body
    (0 = forward, pi = backward); ``mount_offset`` the body-frame position.
    """

    zones_per_side: int = 8
    fov_deg: float = VL53L5CX_FOV_DEG
    max_range_m: float = VL53L5CX_MAX_RANGE_M
    yaw_offset: float = 0.0
    mount_x: float = 0.0
    mount_y: float = 0.0
    noise_sigma_base_m: float = 0.02
    noise_sigma_prop: float = 0.01
    interference_prob: float = 0.02
    grazing_limit_rad: float = math.radians(75.0)
    #: Extra dropout probability of the outermost rows (floor/ceiling clip).
    edge_row_dropout_prob: float = 0.05

    def __post_init__(self) -> None:
        if self.zones_per_side not in (4, 8):
            raise SensorError(
                f"VL53L5CX supports 4x4 or 8x8 zones, got {self.zones_per_side}"
            )
        if self.max_range_m <= 0:
            raise SensorError(f"max range must be positive, got {self.max_range_m}")
        if not 0.0 <= self.interference_prob <= 1.0:
            raise SensorError("interference_prob must be a probability")

    @property
    def max_frame_rate_hz(self) -> float:
        """15 Hz in 8x8 mode, 60 Hz in 4x4 mode (paper Sec. III-A2)."""
        return 15.0 if self.zones_per_side == 8 else 60.0

    @property
    def zone_count(self) -> int:
        """Total zones per frame (64 or 16)."""
        return self.zones_per_side**2

    def column_azimuths(self) -> np.ndarray:
        """Body-frame azimuth of each zone column, including mounting yaw.

        Columns tile the horizontal FoV; azimuths are the column centers,
        so for 8 columns over 45° they sit at +-2.8125°, +-8.4375°, ...
        """
        half_fov = math.radians(self.fov_deg) / 2.0
        n = self.zones_per_side
        centers = (np.arange(n) + 0.5) / n * (2 * half_fov) - half_fov
        return centers + self.yaw_offset


@dataclass
class TofFrame:
    """One multizone measurement: ranges plus status flags.

    ``ranges_m`` and ``status`` have shape ``(zones_per_side,
    zones_per_side)``; ``azimuths`` (body frame, mounting yaw included) has
    shape ``(zones_per_side,)`` — one azimuth per column.
    """

    timestamp: float
    sensor_name: str
    ranges_m: np.ndarray
    status: np.ndarray
    azimuths: np.ndarray
    mount_x: float = 0.0
    mount_y: float = 0.0

    @property
    def zones_per_side(self) -> int:
        return int(self.ranges_m.shape[0])

    def valid_mask(self) -> np.ndarray:
        """Boolean matrix of zones carrying usable ranges."""
        return self.status == ZoneStatus.VALID

    def valid_fraction(self) -> float:
        """Fraction of valid zones in this frame."""
        return float(np.count_nonzero(self.valid_mask())) / self.ranges_m.size

    def beams(self, rows: tuple[int, ...] | None = None):
        """Flatten selected rows into per-beam ``(azimuth, range, valid)``.

        ``rows=None`` uses every row.  This is the adapter the observation
        model consumes: each zone contributes one beam at its column
        azimuth.  Returns three flat arrays.
        """
        n = self.zones_per_side
        if rows is None:
            rows = tuple(range(n))
        for row in rows:
            if not 0 <= row < n:
                raise SensorError(f"row {row} outside the {n}x{n} zone matrix")
        row_index = np.asarray(rows, dtype=np.int64)
        azimuths = np.tile(self.azimuths, len(rows))
        ranges = self.ranges_m[row_index, :].reshape(-1)
        valid = (self.status[row_index, :] == ZoneStatus.VALID).reshape(-1)
        return azimuths, ranges, valid


class TofSensor:
    """A simulated VL53L5CX attached to the drone body.

    ``measure`` casts one ray per zone column against the ground-truth
    occupancy grid from the sensor's mounted position/heading, then expands
    columns into the full zone matrix, applying per-zone noise and error
    flags.
    """

    def __init__(
        self, spec: TofSensorSpec, name: str, rng: np.random.Generator
    ) -> None:
        self.spec = spec
        self.name = name
        self._rng = rng

    def measure(
        self, grid: OccupancyGrid, body_pose: Pose2D, timestamp: float
    ) -> TofFrame:
        """Produce one zone-matrix frame from the given body pose."""
        spec = self.spec
        n = spec.zones_per_side
        sensor_x, sensor_y = body_pose.transform_point(spec.mount_x, spec.mount_y)
        azimuths_body = spec.column_azimuths()
        azimuths_world = azimuths_body + body_pose.theta

        true_ranges = np.empty(n, dtype=np.float64)
        incidences = np.empty(n, dtype=np.float64)
        for col in range(n):
            hit = cast_ray(grid, sensor_x, sensor_y, float(azimuths_world[col]), spec.max_range_m)
            true_ranges[col] = hit
            incidences[col] = (
                incidence_angle(grid, sensor_x, sensor_y, float(azimuths_world[col]), hit)
                if hit < spec.max_range_m
                else 0.0
            )

        ranges = np.empty((n, n), dtype=np.float64)
        status = np.full((n, n), int(ZoneStatus.VALID), dtype=np.int64)
        for col in range(n):
            out_of_range = true_ranges[col] >= spec.max_range_m
            grazing = incidences[col] > spec.grazing_limit_rad
            sigma = spec.noise_sigma_base_m + spec.noise_sigma_prop * true_ranges[col]
            noisy = true_ranges[col] + self._rng.normal(0.0, sigma, size=n)
            np.clip(noisy, 0.0, spec.max_range_m, out=noisy)
            ranges[:, col] = noisy
            for row in range(n):
                if out_of_range:
                    status[row, col] = ZoneStatus.OUT_OF_RANGE
                    ranges[row, col] = spec.max_range_m
                elif grazing:
                    status[row, col] = ZoneStatus.GRAZING
                elif self._zone_dropout(row, n):
                    status[row, col] = ZoneStatus.INTERFERENCE

        return TofFrame(
            timestamp=timestamp,
            sensor_name=self.name,
            ranges_m=ranges,
            status=status,
            azimuths=azimuths_body,
            mount_x=spec.mount_x,
            mount_y=spec.mount_y,
        )

    def _zone_dropout(self, row: int, n: int) -> bool:
        """Random interference, more likely on the outermost rows."""
        prob = self.spec.interference_prob
        if row == 0 or row == n - 1:
            prob += self.spec.edge_row_dropout_prob
        return bool(self._rng.random() < prob)


def default_sensor_pair(
    rng_front: np.random.Generator, rng_rear: np.random.Generator
) -> tuple[TofSensor, TofSensor]:
    """The paper's deck configuration: forward + backward facing 8x8 sensors."""
    front = TofSensor(TofSensorSpec(yaw_offset=0.0, mount_x=0.02), "tof-front", rng_front)
    rear = TofSensor(TofSensorSpec(yaw_offset=math.pi, mount_x=-0.02), "tof-rear", rng_rear)
    return front, rear
