"""Gyroscope yaw-rate model (BMI088 on the Crazyflie 2.1).

Only the yaw axis matters for 2-D localization at fixed height.  The model
is the standard rate-gyro error decomposition: white noise plus a slowly
random-walking bias — the terms responsible for the heading drift MCL has
to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import SensorError


@dataclass(frozen=True)
class GyroSpec:
    """Yaw-rate gyro noise configuration (per-axis BMI088-class numbers)."""

    #: White noise of each rate sample, rad/s.
    rate_noise_sigma: float = 0.004
    #: Random-walk step of the rate bias, (rad/s)/sqrt(s).
    bias_walk_sigma: float = 0.0015
    #: Initial bias standard deviation, rad/s.
    initial_bias_sigma: float = 0.003
    #: Hard cap on the accumulated bias magnitude, rad/s.
    bias_limit: float = 0.02
    #: Sample rate, Hz.
    rate_hz: float = 100.0

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise SensorError(f"gyro rate must be positive, got {self.rate_hz}")


@dataclass
class GyroMeasurement:
    """One yaw-rate sample."""

    timestamp: float
    yaw_rate: float


class Gyro:
    """Simulated single-axis (yaw) rate gyro with bias random walk."""

    def __init__(self, spec: GyroSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self._rng = rng
        self._bias = float(rng.normal(0.0, spec.initial_bias_sigma))

    @property
    def bias(self) -> float:
        """Current bias value (for tests/analysis)."""
        return self._bias

    def measure(self, true_yaw_rate: float, dt: float, timestamp: float) -> GyroMeasurement:
        """Corrupt a true yaw rate into a gyro sample."""
        if dt < 0:
            raise SensorError(f"dt must be non-negative, got {dt}")
        spec = self.spec
        if dt > 0:
            self._bias += float(self._rng.normal(0.0, spec.bias_walk_sigma * np.sqrt(dt)))
            self._bias = float(np.clip(self._bias, -spec.bias_limit, spec.bias_limit))
        noise = float(self._rng.normal(0.0, spec.rate_noise_sigma))
        return GyroMeasurement(timestamp=timestamp, yaw_rate=true_yaw_rate + self._bias + noise)
