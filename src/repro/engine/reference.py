"""The reference backend: one scalar filter per run.

This is the original evaluation inner loop, bit-for-bit: each
:class:`RunSpec` replays its sequence through a fresh
:class:`~repro.core.mcl.MonteCarloLocalization`, feeding odometry
increments and ToF frames and recording the estimate-vs-mocap errors at
every frame instant.  It is the ground truth the batched backend is
tested against, and the fallback for configurations a fancier backend
does not support.

:class:`ReferenceStack` is the backend's step-level entry point
(:class:`~repro.engine.backend.SessionStack`): one scalar
:class:`~repro.core.particles.ParticleSet` per row, advanced through
exactly the ``MonteCarloLocalization.process`` code path.  It exists so
the serve layer can multiplex sessions over *either* backend — and so
fleet traces can be pinned against the scalar loop step by step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D
from ..common.rng import make_rng
from ..core.config import MclConfig
from ..core.mcl import MonteCarloLocalization
from ..core.motion import apply_motion_model
from ..core.observation import apply_observation_model
from ..core.particles import ParticleSet
from ..core.pose_estimate import estimate_pose, pose_error
from ..core.resampling import draw_wheel_offset, systematic_resample
from ..core.snapshot import FilterStateSnapshot
from ..dataset.recorder import RecordedSequence
from ..maps.distance_field import DistanceField
from ..maps.occupancy import OccupancyGrid
from .backend import RunSpec, RunTrace, StepWork


class ReferenceStack:
    """Scalar step-level stack: one :class:`ParticleSet` per row.

    Each packed :meth:`step` unrolls into per-row scalar updates that
    follow ``MonteCarloLocalization.process`` operation for operation
    (motion model, observation model, ESS-gated wheel resampling, pose
    estimate), with the gating and beam extraction already resolved by
    the caller's replay step.  Per-row results are trivially independent
    of the packing — there is no cross-row arithmetic at all.
    """

    def __init__(self, config: MclConfig, rows: int = 0) -> None:
        self.config = config
        self.count = config.particle_count
        self._particles: list[ParticleSet | None] = []
        self._rngs: list[np.random.Generator | None] = []
        self._updates: list[int] = []
        self._estimates: list[Pose2D] = []
        self._estimate_arrays: list[np.ndarray | None] = []
        self.ensure_capacity(rows)

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------
    def ensure_capacity(self, rows: int) -> None:
        added = rows - len(self._particles)
        if added <= 0:
            return
        self._particles.extend([None] * added)
        self._rngs.extend([None] * added)
        self._updates.extend([0] * added)
        self._estimates.extend([Pose2D.identity()] * added)
        self._estimate_arrays.extend([None] * added)

    def init_row(self, row: int, grid: OccupancyGrid, spec: RunSpec) -> None:
        """(Re)initialize ``row`` exactly like a fresh reference filter."""
        rng = make_rng(spec.seed, "mcl")
        particles = ParticleSet(self.count, self.config.precision)
        particles.init_uniform(grid, rng)
        if spec.tracking_init:
            start = spec.sequence.ground_truth_pose(0)
            particles.init_gaussian(
                start.x,
                start.y,
                start.theta,
                spec.tracking_sigma_xy,
                spec.tracking_sigma_theta,
                rng,
            )
        self._particles[row] = particles
        self._rngs[row] = rng
        self._updates[row] = 0
        self._set_estimate(row, estimate_pose(particles).pose)

    def _row(self, row: int) -> tuple[ParticleSet, np.random.Generator]:
        particles = self._particles[row]
        rng = self._rngs[row]
        if particles is None or rng is None:
            raise ConfigurationError(f"stack row {row} was never initialized")
        return particles, rng

    def _set_estimate(self, row: int, pose: Pose2D) -> None:
        self._estimates[row] = pose
        self._estimate_arrays[row] = pose.as_array()

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, work: Sequence[StepWork]) -> None:
        for item in work:
            for row in item.rows:
                self._step_row(row, item)

    def _step_row(self, row: int, item: StepWork) -> None:
        particles, rng = self._row(row)
        config = self.config
        step = item.step
        assert step.pending is not None  # packed steps always fired
        apply_motion_model(particles, step.pending, config, rng)
        observed = False
        if step.beams is not None:
            observed = apply_observation_model(
                particles, step.beams, item.field, config
            )
        if observed:
            ess = particles.effective_sample_size()
            threshold = config.resample_ess_fraction * particles.count
            if ess <= threshold:
                u0 = draw_wheel_offset(rng, particles.count)
                indices = systematic_resample(
                    particles.weights.astype(np.float64), u0, normalized=True
                )
                particles.swap_from_indices(indices)
        self._set_estimate(row, estimate_pose(particles).pose)
        self._updates[row] += 1

    # ------------------------------------------------------------------
    # Queries and state capture
    # ------------------------------------------------------------------
    def estimate(self, row: int) -> Pose2D:
        return self._estimates[row]

    def estimate_array(self, row: int) -> np.ndarray:
        array = self._estimate_arrays[row]
        if array is None:
            raise ConfigurationError(f"stack row {row} was never initialized")
        return array

    def updates(self, row: int) -> int:
        return self._updates[row]

    def export_row(self, row: int) -> FilterStateSnapshot:
        particles, rng = self._row(row)
        return FilterStateSnapshot.capture(
            particles.x,
            particles.y,
            particles.theta,
            particles.weights,
            rng,
            self._updates[row],
            self.estimate_array(row),
        )

    def import_row(self, row: int, snapshot: FilterStateSnapshot) -> None:
        particles = self._particles[row]
        if particles is None:
            particles = ParticleSet(self.count, self.config.precision)
            self._particles[row] = particles
        snapshot.check_compatible(
            self.count, self.config.precision.particle_dtype
        )
        snapshot.check_no_pending()
        particles.x[:] = snapshot.x
        particles.y[:] = snapshot.y
        particles.theta[:] = snapshot.theta
        particles.weights[:] = snapshot.weights
        self._rngs[row] = snapshot.make_rng()
        self._updates[row] = int(snapshot.update_count)
        self._set_estimate(row, snapshot.estimate_pose())


class ReferenceBackend:
    """Sequential executor: runs specs one by one through the scalar filter."""

    name = "reference"

    def execute(
        self,
        grid: OccupancyGrid,
        specs: Sequence[RunSpec],
        config: MclConfig,
        field: DistanceField | None = None,
    ) -> list[RunTrace]:
        return [self._run_one(grid, spec, config, field) for spec in specs]

    def open_stack(self, config: MclConfig, rows: int = 0) -> ReferenceStack:
        """Open the step-level entry point: one scalar filter per row."""
        return ReferenceStack(config, rows)

    def _run_one(
        self,
        grid: OccupancyGrid,
        spec: RunSpec,
        config: MclConfig,
        field: DistanceField | None,
    ) -> RunTrace:
        sequence: RecordedSequence = spec.sequence
        mcl = MonteCarloLocalization(grid, config, seed=spec.seed, field=field)
        if spec.tracking_init:
            mcl.reset_at(
                sequence.ground_truth_pose(0),
                sigma_xy=spec.tracking_sigma_xy,
                sigma_theta=spec.tracking_sigma_theta,
            )

        timestamps = []
        position_errors = []
        yaw_errors = []
        estimates = []

        previous_odometry = sequence.odometry_pose(0)
        for index, step in enumerate(sequence.steps()):
            if index > 0:
                increment = previous_odometry.between(step.odometry)
                previous_odometry = step.odometry
                mcl.add_odometry(increment)
            # Offer every observation instant — including frame 0 — and
            # let the movement gate decide whether an update fires.
            mcl.process(step.frames)
            estimate = mcl.estimate.pose
            err_pos, err_yaw = pose_error(estimate, step.ground_truth)
            timestamps.append(step.timestamp)
            position_errors.append(err_pos)
            yaw_errors.append(err_yaw)
            estimates.append(estimate.as_array())

        return RunTrace(
            timestamps=np.array(timestamps),
            position_errors=np.array(position_errors),
            yaw_errors=np.array(yaw_errors),
            estimate_trace=np.stack(estimates),
            update_count=mcl.update_count,
        )
