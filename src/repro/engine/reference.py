"""The reference backend: one scalar filter per run.

This is the original evaluation inner loop, bit-for-bit: each
:class:`RunSpec` replays its sequence through a fresh
:class:`~repro.core.mcl.MonteCarloLocalization`, feeding odometry
increments and ToF frames and recording the estimate-vs-mocap errors at
every frame instant.  It is the ground truth the batched backend is
tested against, and the fallback for configurations a fancier backend
does not support.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import MclConfig
from ..core.mcl import MonteCarloLocalization
from ..core.pose_estimate import pose_error
from ..dataset.recorder import RecordedSequence
from ..maps.distance_field import DistanceField
from ..maps.occupancy import OccupancyGrid
from .backend import RunSpec, RunTrace


class ReferenceBackend:
    """Sequential executor: runs specs one by one through the scalar filter."""

    name = "reference"

    def execute(
        self,
        grid: OccupancyGrid,
        specs: Sequence[RunSpec],
        config: MclConfig,
        field: DistanceField | None = None,
    ) -> list[RunTrace]:
        return [self._run_one(grid, spec, config, field) for spec in specs]

    def _run_one(
        self,
        grid: OccupancyGrid,
        spec: RunSpec,
        config: MclConfig,
        field: DistanceField | None,
    ) -> RunTrace:
        sequence: RecordedSequence = spec.sequence
        mcl = MonteCarloLocalization(grid, config, seed=spec.seed, field=field)
        if spec.tracking_init:
            mcl.reset_at(
                sequence.ground_truth_pose(0),
                sigma_xy=spec.tracking_sigma_xy,
                sigma_theta=spec.tracking_sigma_theta,
            )

        timestamps = []
        position_errors = []
        yaw_errors = []
        estimates = []

        previous_odometry = sequence.odometry_pose(0)
        for index, step in enumerate(sequence.steps()):
            if index > 0:
                increment = previous_odometry.between(step.odometry)
                previous_odometry = step.odometry
                mcl.add_odometry(increment)
            # Offer every observation instant — including frame 0 — and
            # let the movement gate decide whether an update fires.
            mcl.process(step.frames)
            estimate = mcl.estimate.pose
            err_pos, err_yaw = pose_error(estimate, step.ground_truth)
            timestamps.append(step.timestamp)
            position_errors.append(err_pos)
            yaw_errors.append(err_yaw)
            estimates.append(estimate.as_array())

        return RunTrace(
            timestamps=np.array(timestamps),
            position_errors=np.array(position_errors),
            yaw_errors=np.array(yaw_errors),
            estimate_trace=np.stack(estimates),
            update_count=mcl.update_count,
        )
