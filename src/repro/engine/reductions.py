"""Deterministic reductions: the spec behind the bitwise contract.

Every order-sensitive reduction of the filter (weight sums, weighted
dots, the beam log-likelihood sum) historically relied on numpy's
*pairwise* summation being per-row deterministic along the last
contiguous axis.  That made bitwise reproducibility an accident of numpy
internals — impossible for a JIT or GPU backend to replicate without
re-implementing numpy's private blocking scheme.  This module promotes
the reduction order to a **spec** that any backend can implement with a
plain loop:

The deterministic reduction tree
--------------------------------
A length-``n`` vector is reduced along its last axis in levels with a
fixed chunk width ``DET_CHUNK = 8``:

1. Split the vector into consecutive chunks of 8 elements (the final
   chunk may be shorter — it is *not* zero-padded).
2. Reduce each chunk **sequentially left to right**:
   ``p_j = (((v[8j] + v[8j+1]) + v[8j+2]) + ...)``.
3. The partials ``p_0 .. p_{ceil(n/8)-1}`` form the next level's vector;
   repeat until one value remains.  ``n = 0`` reduces to ``+0.0``.

For ``n = 1024`` the levels are ``1024 -> 128 -> 16 -> 2 -> 1``.  The
tree depends only on ``n``, never on leading shape, memory layout or
chunking of the caller — so a ``(N,)`` vector, a row of an ``(R, N)``
stack, and a scalar loop in C/numba/CUDA all produce the identical
float64 result.  All reductions run in float64 (inputs are coerced);
products of :func:`det_dot` / squares of :func:`det_sum_squares` are
formed elementwise *before* the tree, exactly as a fused
multiply-into-accumulator loop would.

Every backend that joins the bitwise-equivalence contract MUST reduce
through this tree (see docs/architecture.md, "Deterministic
reductions").  Order-dependent *scans* (the resampling wheel's cumsum /
searchsorted) are outside this spec: they remain strictly sequential
per run, which every implementation agrees on already.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DET_CHUNK", "det_sum", "det_dot", "det_sum_squares"]

#: Chunk width of the deterministic reduction tree.  8 keeps the
#: sequential runs short (bounding rounding-error growth like pairwise
#: summation does) while mapping cleanly onto unrolled scalar loops and
#: one AVX-512 lane group.  Changing it changes every reduction in the
#: system — that is a golden re-baseline, not a tuning knob.
DET_CHUNK = 8


def _reduce_level(a: np.ndarray) -> np.ndarray:
    """One tree level: chunk-of-8 sequential partial sums, ragged tail.

    ``a[..., j]`` of the result is the left-to-right sum of input
    elements ``8j .. min(8j+8, n)-1``.  Implemented as 7 strided
    elementwise adds — each strictly elementwise, so the per-element
    IEEE-754 results are independent of leading shape and layout.
    """
    out = a[..., 0::DET_CHUNK].astype(np.float64)  # contiguous copy
    for k in range(1, DET_CHUNK):
        part = a[..., k::DET_CHUNK]
        width = part.shape[-1]
        if width == 0:
            break
        out[..., :width] += part
    return out


def det_sum(a: np.ndarray) -> np.ndarray:
    """Deterministic-tree sum along the last axis (float64).

    Returns an array of ``a.shape[:-1]`` (a 0-d scalar for 1-D input),
    bit-for-bit identical for any leading shape and memory layout.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim == 0:
        raise ValueError("det_sum reduces the last axis; got a 0-d array")
    if a.shape[-1] == 0:
        return np.zeros(a.shape[:-1], dtype=np.float64)[()]
    if a.shape[-1] == 1:
        return a[..., 0].astype(np.float64)  # detached copy, never a view
    while a.shape[-1] > 1:
        a = _reduce_level(a)
    return a[..., 0]


def det_dot(w: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Deterministic weighted dot: ``det_sum(w * v)`` along the last axis.

    The elementwise products are formed in float64 first, then reduced
    through the tree — matching a fused multiply-accumulate loop that
    follows the same chunk order.
    """
    w = np.asarray(w, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    return det_sum(w * v)


def det_sum_squares(a: np.ndarray) -> np.ndarray:
    """Deterministic sum of squares: ``det_sum(a * a)`` along the last axis."""
    a = np.asarray(a, dtype=np.float64)
    return det_sum(a * a)
