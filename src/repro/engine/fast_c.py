"""C provider of the ``fast`` backend: cffi-compiled fused kernels.

This is the tier the paper's own port corresponds to: the GAP9
implementation wins by restructuring the per-particle likelihood loop
into one fused C pass (Sec. III-B/C of the paper), and this module does
the same on the host — transform -> EDT gather -> squared-distance
reduction fused per particle, no ``(R, N, K)`` temporaries.

Bitwise discipline (see :mod:`repro.engine.fast` for the full rules):

* Only IEEE-exact arithmetic crosses the C boundary: ``+ - * /``,
  ``floor``, ``fmod``/``copysign`` (the wrap), integer casts, compares
  and gathers.  Transcendentals (``sin``/``cos``/``exp``) are **never**
  evaluated in C — numpy's SIMD implementations may differ from libm by
  one ulp, so the Python side precomputes them and passes arrays in.
* Every reduction follows the deterministic chunk-of-8 tree of
  :mod:`repro.engine.reductions` (``det_sum_inplace`` below is the
  scalar-loop statement of the same spec).
* The resampling wheel is the sequential scan of
  :func:`repro.engine.kernels.systematic_resample`: float64 cumulative
  sum, last entry clamped to 1.0, ``side="right"`` index resolution
  (the monotone two-pointer walk equals numpy's binary search because
  the clamped final entry exceeds every arrow position).

The extension module is compiled once per C-source hash with the system
toolchain and cached under ``$REPRO_FAST_CACHE`` (default
``~/.cache/repro-fastc``); concurrent builders race benignly via
atomic rename.  All entry points raise plain exceptions; availability
policy (what to do when no compiler exists) lives in
:mod:`repro.engine.fast`.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

C_SOURCE = r"""
#include <math.h>
#include <stdint.h>

#define DET_CHUNK 8

/* Deterministic chunk-of-8 tree sum (repro.engine.reductions spec),
 * destroying the input buffer: each level writes its partials into the
 * buffer prefix it has already consumed. */
static double det_sum_inplace(double *v, int64_t n)
{
    int64_t m = n;
    while (m > 1) {
        int64_t out = (m + DET_CHUNK - 1) / DET_CHUNK;
        for (int64_t j = 0; j < out; ++j) {
            int64_t lo = j * DET_CHUNK;
            int64_t hi = lo + DET_CHUNK < m ? lo + DET_CHUNK : m;
            double acc = v[lo];
            for (int64_t i = lo + 1; i < hi; ++i) acc += v[i];
            v[j] = acc;
        }
        m = out;
    }
    return m == 1 ? v[0] : 0.0;
}

/* det_dot: elementwise product into scratch, then the tree. */
static double det_dot_scratch(const double *w, const double *v, int64_t n,
                              double *scratch)
{
    for (int64_t i = 0; i < n; ++i) scratch[i] = w[i] * v[i];
    return det_sum_inplace(scratch, n);
}

/* Fused transform -> EDT gather -> det-tree beam reduction over a flat
 * batch of m particles sharing k body-frame beam end points.  Mirrors
 * kernels.transform_endpoints + DistanceField.lookup_squared_world +
 * det_sum exactly.  The beam loop is split into phases: the transform
 * and index arithmetic are pure elementwise IEEE operations (safe to
 * vectorize — no reassociation), the table gather stays scalar, and
 * only the final tree is order-sensitive.  Out-of-grid beams encode as
 * index -1; numpy's take(mode="clip") gathers a clipped value for them
 * too, but it is overwritten with the border value either way, so
 * skipping the dead gather is value-identical. */
static void beam_indices(
    double xi, double yi, double ci, double si,
    const double *restrict end_x, const double *restrict end_y,
    int64_t rows, int64_t cols,
    double origin_x, double origin_y, double resolution,
    int64_t k, int64_t *restrict idx_scratch)
{
    for (int64_t b = 0; b < k; ++b) {
        double wx = (ci * end_x[b] + xi) - si * end_y[b];
        double wy = (si * end_x[b] + yi) + ci * end_y[b];
        double fcol = floor((wx - origin_x) / resolution);
        double frow = floor((wy - origin_y) / resolution);
        int inside = (frow >= 0.0) & (frow < (double)rows)
                   & (fcol >= 0.0) & (fcol < (double)cols);
        idx_scratch[b] = inside
            ? (int64_t)frow * cols + (int64_t)fcol
            : (int64_t)-1;
    }
}

void fused_loglik_f64(
    const double *restrict x, const double *restrict y,
    const double *restrict cos_t, const double *restrict sin_t,
    const double *restrict end_x, const double *restrict end_y,
    const double *restrict sq_table, int64_t rows, int64_t cols,
    double origin_x, double origin_y, double resolution,
    double border_sq,
    int64_t m, int64_t k,
    int64_t *restrict idx_scratch, double *restrict beam_scratch,
    double *restrict out)
{
    for (int64_t i = 0; i < m; ++i) {
        beam_indices(x[i], y[i], cos_t[i], sin_t[i], end_x, end_y,
                     rows, cols, origin_x, origin_y, resolution,
                     k, idx_scratch);
        for (int64_t b = 0; b < k; ++b) {
            int64_t f = idx_scratch[b];
            beam_scratch[b] = f >= 0 ? sq_table[f] : border_sq;
        }
        out[i] = det_sum_inplace(beam_scratch, k);
    }
}

/* Quantized-field variant: gather uint8 codes, decode squared metres
 * through the 256-entry float64 LUT (DistanceField.squared_lut). */
void fused_loglik_u8(
    const double *restrict x, const double *restrict y,
    const double *restrict cos_t, const double *restrict sin_t,
    const double *restrict end_x, const double *restrict end_y,
    const uint8_t *restrict codes, const double *restrict sq_lut,
    int64_t rows, int64_t cols,
    double origin_x, double origin_y, double resolution,
    double border_sq,
    int64_t m, int64_t k,
    int64_t *restrict idx_scratch, double *restrict beam_scratch,
    double *restrict out)
{
    for (int64_t i = 0; i < m; ++i) {
        beam_indices(x[i], y[i], cos_t[i], sin_t[i], end_x, end_y,
                     rows, cols, origin_x, origin_y, resolution,
                     k, idx_scratch);
        for (int64_t b = 0; b < k; ++b) {
            int64_t f = idx_scratch[b];
            beam_scratch[b] = f >= 0 ? sq_lut[codes[f]] : border_sq;
        }
        out[i] = det_sum_inplace(beam_scratch, k);
    }
}

/* Weighted-mean estimate reductions of one row (kernels.weighted_mean
 * pose semantics, stacked form): normalize by the caller-supplied total
 * (the det-tree sum of w), then det-dot against x, y and the
 * numpy-computed sin/cos of yaw.  out = {wn_total, mean_x, mean_y,
 * sin_sum, cos_sum}.  The caller handles degenerate totals and the
 * atan2 (Python math.atan2, identical to the scalar kernel). */
void estimate_row(
    const double *x, const double *y,
    const double *sin_t, const double *cos_t,
    const double *w, double total, int64_t n,
    double *wn, double *scratch, double *out)
{
    for (int64_t i = 0; i < n; ++i) wn[i] = w[i] / total;
    for (int64_t i = 0; i < n; ++i) scratch[i] = wn[i];
    out[0] = det_sum_inplace(scratch, n);
    out[1] = det_dot_scratch(wn, x, n, scratch);
    out[2] = det_dot_scratch(wn, y, n, scratch);
    out[3] = det_dot_scratch(wn, sin_t, n, scratch);
    out[4] = det_dot_scratch(wn, cos_t, n, scratch);
}

/* Systematic wheel: sequential float64 cumulative sum with the final
 * entry clamped to 1.0, arrows at u0 + i/n resolved side="right" by a
 * monotone scan.  Identical indices to kernels.systematic_resample
 * (normalized=True). */
void wheel_resample(
    const double *w, int64_t n, double u0,
    double *cumulative, int64_t *idx)
{
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        acc += w[i];
        cumulative[i] = acc;
    }
    cumulative[n - 1] = 1.0;
    int64_t j = 0;
    for (int64_t i = 0; i < n; ++i) {
        double pos = u0 + (double)i / (double)n;
        while (cumulative[j] <= pos && j < n - 1) ++j;
        idx[i] = j;
    }
}

/* wrap_angle: ((a + pi) % 2pi) - pi with numpy remainder semantics
 * (fmod, then sign adjustment toward the positive divisor; exact-zero
 * remainders take the divisor's sign).  fmod is IEEE-exact, so this is
 * bit-identical to the numpy expression. */
static double det_wrap(double a)
{
    double mod = fmod(a + M_PI, 2.0 * M_PI);
    if (mod != 0.0) {
        if (mod < 0.0) mod += 2.0 * M_PI;
    } else {
        mod = 0.0;  /* copysign(0, +2pi) */
    }
    return mod - M_PI;
}

/* Per-row deterministic tree sums of an (r, n) row-major block. */
void det_sum_rows(const double *a, int64_t r, int64_t n,
                  double *scratch, double *out)
{
    for (int64_t row = 0; row < r; ++row) {
        const double *ar = a + row * n;
        for (int64_t i = 0; i < n; ++i) scratch[i] = ar[i];
        out[row] = det_sum_inplace(scratch, n);
    }
}

/* kernels.effective_sample_size, row by row: det-tree total, normalize,
 * det-tree sum of squares, guarded reciprocal.  The guards replicate
 * the numpy where() chain exactly: non-positive (or NaN) totals yield
 * 0.0; a valid row's square sum is >= 1/n > 0 so its guard never
 * fires, but it is kept for bit-faithfulness. */
void ess_rows(const double *w, int64_t r, int64_t n,
              double *scratch, double *out)
{
    for (int64_t row = 0; row < r; ++row) {
        const double *wr = w + row * n;
        for (int64_t i = 0; i < n; ++i) scratch[i] = wr[i];
        double total = det_sum_inplace(scratch, n);
        if (!(total > 0.0)) {
            out[row] = 0.0;
            continue;
        }
        for (int64_t i = 0; i < n; ++i) {
            double wn = wr[i] / total;
            scratch[i] = wn * wn;
        }
        double sq = det_sum_inplace(scratch, n);
        out[row] = 1.0 / (sq > 0.0 ? sq : 1.0);
    }
}

/* One row's posterior weight update at float32 storage, fused:
 * prior * likelihood (the numpy side supplies like = exp(...)), cast to
 * storage precision, then kernels.normalize_weights on that row —
 * float64 scratch, non-finite entries zeroed, det-tree total, divide or
 * reset-to-uniform, cast back — plus the float64 shadow refresh.
 * ``prior`` may alias ``shadow`` (the caller passes the same w64 row):
 * each index is read before it is written. */
void update_weights_f32(const double *prior, const double *like, int64_t n,
                        double inv_count, double *scratch,
                        float *stored, double *shadow)
{
    for (int64_t i = 0; i < n; ++i) {
        double u = prior[i] * like[i];
        float sf = (float)u;
        double s = (double)sf;
        if (!isfinite(s)) s = 0.0;
        shadow[i] = s;
        scratch[i] = s;
    }
    double total = det_sum_inplace(scratch, n);
    if (total > 0.0) {
        for (int64_t i = 0; i < n; ++i) {
            float o = (float)(shadow[i] / total);
            stored[i] = o;
            shadow[i] = (double)o;
        }
    } else {
        float o = (float)inv_count;
        double od = (double)o;
        for (int64_t i = 0; i < n; ++i) {
            stored[i] = o;
            shadow[i] = od;
        }
    }
}

/* One row's motion update at float32 storage, fused: compose the noisy
 * body-frame increment (kernels.compose_increment op order; cos/sin of
 * the prior yaw come from numpy), wrap yaw, then the _store step —
 * wrap again, cast to storage precision — and the shadow refresh.  The
 * shadow rows double as the pose inputs; index i is read before it is
 * written. */
void compose_store_f32(const double *cos_t, const double *sin_t,
                       const double *dx, const double *dy, const double *dt,
                       int64_t n,
                       float *xs, float *ys, float *ts,
                       double *x64, double *y64, double *t64)
{
    for (int64_t i = 0; i < n; ++i) {
        double nx = (x64[i] + cos_t[i] * dx[i]) - sin_t[i] * dy[i];
        double ny = (y64[i] + sin_t[i] * dx[i]) + cos_t[i] * dy[i];
        double nt = det_wrap(det_wrap(t64[i] + dt[i]));
        float fx = (float)nx;
        float fy = (float)ny;
        float ft = (float)nt;
        xs[i] = fx;
        ys[i] = fy;
        ts[i] = ft;
        x64[i] = (double)fx;
        y64[i] = (double)fy;
        t64[i] = (double)ft;
    }
}

/* One row's wheel resample at float32 storage, fused: wheel indices,
 * then gather the three stored rows, their three float64 shadows and
 * the two trig shadows (cos/sin of yaw: a gather of exact values equals
 * the trig of the gathered yaw) through bounce buffers (idx[i] can
 * exceed i, so in-place forward copies would corrupt).  The caller
 * resets the weight row to uniform afterward, exactly like the numpy
 * path. */
void resample_f32(const double *w, int64_t n, double u0,
                  double *cumulative, int64_t *idx,
                  float *xs, float *ys, float *ts,
                  double *x64, double *y64, double *t64,
                  double *c64, double *s64,
                  float *fscratch, double *dscratch)
{
    wheel_resample(w, n, u0, cumulative, idx);
    float *stored[3] = {xs, ys, ts};
    for (int a = 0; a < 3; ++a) {
        float *arr = stored[a];
        for (int64_t i = 0; i < n; ++i) fscratch[i] = arr[idx[i]];
        for (int64_t i = 0; i < n; ++i) arr[i] = fscratch[i];
    }
    double *shadows[5] = {x64, y64, t64, c64, s64};
    for (int a = 0; a < 5; ++a) {
        double *arr = shadows[a];
        for (int64_t i = 0; i < n; ++i) dscratch[i] = arr[idx[i]];
        for (int64_t i = 0; i < n; ++i) arr[i] = dscratch[i];
    }
}
"""

C_DECLARATIONS = """
void fused_loglik_f64(const double *, const double *, const double *,
    const double *, const double *, const double *, const double *,
    int64_t, int64_t, double, double, double, double, int64_t, int64_t,
    int64_t *, double *, double *);
void fused_loglik_u8(const double *, const double *, const double *,
    const double *, const double *, const double *, const uint8_t *,
    const double *, int64_t, int64_t, double, double, double, double,
    int64_t, int64_t, int64_t *, double *, double *);
void estimate_row(const double *, const double *, const double *,
    const double *, const double *, double, int64_t, double *, double *,
    double *);
void wheel_resample(const double *, int64_t, double, double *, int64_t *);
void det_sum_rows(const double *, int64_t, int64_t, double *, double *);
void ess_rows(const double *, int64_t, int64_t, double *, double *);
void update_weights_f32(const double *, const double *, int64_t, double,
    double *, float *, double *);
void compose_store_f32(const double *, const double *, const double *,
    const double *, const double *, int64_t, float *, float *, float *,
    double *, double *, double *);
void resample_f32(const double *, int64_t, double, double *, int64_t *,
    float *, float *, float *, double *, double *, double *, double *,
    double *, float *, double *);
"""

#: Keep the machine-specific flags IEEE-strict: no -ffast-math, ever —
#: it licenses reassociation, which breaks the bitwise contract.  GNU C
#: also defaults to ``-ffp-contract=fast``, which fuses ``a*b + c``
#: into FMA (one rounding instead of two) — numpy never contracts, so
#: contraction is a 1-ulp bitwise hazard in the pose transform and must
#: be off explicitly.  ``-fno-trapping-math`` is value-preserving (it
#: only stops gcc modelling FP exception *flags*, which nothing reads)
#: and is what lets the beam transform's floor/divide loop vectorize.
COMPILE_ARGS = [
    "-O3",
    "-march=native",
    "-funroll-loops",
    "-ffp-contract=off",
    "-fno-trapping-math",
]


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_FAST_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-fastc"


def build_extension():
    """Compile (or load from cache) the extension; returns ``(ffi, lib)``.

    Raises ``ImportError`` when cffi is unavailable and whatever the
    toolchain raises when compilation fails — callers translate into
    availability decisions.
    """
    import cffi

    ffi = cffi.FFI()
    ffi.cdef(C_DECLARATIONS)
    # The flags shape the generated code (fp-contract in particular), so
    # they key the cache alongside the source.
    fingerprint = C_SOURCE + "\0" + " ".join(COMPILE_ARGS)
    tag = hashlib.sha256(fingerprint.encode()).hexdigest()[:12]
    name = f"_repro_fastc_{tag}"
    cache = _cache_dir()

    so_path = None
    try:
        cache.mkdir(parents=True, exist_ok=True)
        so_path = next(iter(sorted(cache.glob(f"{name}.*.so"))), None)
        if so_path is None:
            so_path = next(iter(sorted(cache.glob(f"{name}*.so"))), None)
    except OSError:
        cache = None

    build_dir = None
    if so_path is None:
        build_dir = Path(tempfile.mkdtemp(prefix="repro-fastc-"))
        ffi.set_source(name, C_SOURCE, extra_compile_args=COMPILE_ARGS)
        built = Path(ffi.compile(tmpdir=str(build_dir), verbose=False))
        so_path = built
        if cache is not None:
            target = cache / built.name
            try:
                os.replace(built, target)  # atomic: concurrent builds race safely
                so_path = target
            except OSError:
                so_path = built

    spec = importlib.util.spec_from_file_location(name, so_path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load compiled fast kernels from {so_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if build_dir is not None and not str(so_path).startswith(str(build_dir)):
        shutil.rmtree(build_dir, ignore_errors=True)
    return module.ffi, module.lib


class CProvider:
    """Fused-kernel provider backed by the compiled extension."""

    name = "c"
    #: Offers the fully fused float32 row paths (compose/store, weight
    #: update, resample+gather) in addition to the base provider API.
    fused_f32 = True

    def __init__(self) -> None:
        self._ffi, self._lib = build_extension()
        # Per-beam-count scratch for the loglik kernels, reused across
        # calls (the provider is driven by one single-threaded stack
        # loop at a time, like the stacks' own scratch rows).
        self._beam_scratch: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # ``ffi.from_buffer`` is ~6x cheaper per call than casting
    # ``array.ctypes.data`` (no ctypes interface object), and the
    # returned cdata owns a reference to the source buffer, so
    # conversion copies stay alive for the duration of the call.
    def _dp(self, array: np.ndarray):
        return self._ffi.from_buffer("double[]", array)

    def _fp(self, array: np.ndarray):
        return self._ffi.from_buffer("float[]", array)

    def _ip(self, array: np.ndarray):
        return self._ffi.from_buffer("int64_t[]", array)

    def loglik_sums(
        self,
        x: np.ndarray,
        y: np.ndarray,
        cos_t: np.ndarray,
        sin_t: np.ndarray,
        end_x: np.ndarray,
        end_y: np.ndarray,
        field,
    ) -> np.ndarray:
        """det-tree sums over beams of squared EDT lookups, shape of ``x``."""
        from ..maps.distance_field import FieldKind

        m = x.size
        k = end_x.size
        out = np.empty(x.shape, dtype=np.float64)
        cached = self._beam_scratch.get(k)
        if cached is None:
            cached = (
                np.empty(max(k, 1), dtype=np.int64),
                np.empty(max(k, 1), dtype=np.float64),
            )
            self._beam_scratch[k] = cached
        idx_scratch, beam_scratch = cached
        rows, cols = field.data.shape
        end_x = np.ascontiguousarray(end_x, dtype=np.float64)
        end_y = np.ascontiguousarray(end_y, dtype=np.float64)
        args = (
            self._dp(x),
            self._dp(y),
            self._dp(cos_t),
            self._dp(sin_t),
            self._dp(end_x),
            self._dp(end_y),
        )
        if field.kind is FieldKind.QUANTIZED_U8:
            self._lib.fused_loglik_u8(
                *args,
                self._ffi.from_buffer("uint8_t[]", field.data),
                self._dp(field.squared_lut()),
                rows,
                cols,
                field.origin_x,
                field.origin_y,
                field.resolution,
                field.border_squared(),
                m,
                k,
                self._ip(idx_scratch),
                self._dp(beam_scratch),
                self._dp(out),
            )
        else:
            self._lib.fused_loglik_f64(
                *args,
                self._dp(field.squared_table()),
                rows,
                cols,
                field.origin_x,
                field.origin_y,
                field.resolution,
                field.border_squared(),
                m,
                k,
                self._ip(idx_scratch),
                self._dp(beam_scratch),
                self._dp(out),
            )
        return out

    def estimate_row(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sin_t: np.ndarray,
        cos_t: np.ndarray,
        w: np.ndarray,
        total: float,
        scratch_a: np.ndarray,
        scratch_b: np.ndarray,
    ) -> tuple[float, float, float, float, float]:
        out = np.empty(5, dtype=np.float64)
        self._lib.estimate_row(
            self._dp(x),
            self._dp(y),
            self._dp(sin_t),
            self._dp(cos_t),
            self._dp(w),
            float(total),
            x.size,
            self._dp(scratch_a),
            self._dp(scratch_b),
            self._dp(out),
        )
        return float(out[0]), float(out[1]), float(out[2]), float(out[3]), float(out[4])

    def resample_indices(
        self, w: np.ndarray, u0: float, scratch: np.ndarray
    ) -> np.ndarray:
        idx = np.empty(w.size, dtype=np.int64)
        self._lib.wheel_resample(
            self._dp(w), w.size, float(u0), self._dp(scratch), self._ip(idx)
        )
        return idx

    def det_sum_row(self, a: np.ndarray, scratch: np.ndarray) -> float:
        out = np.empty(1, dtype=np.float64)
        self._lib.det_sum_rows(
            self._dp(a), 1, a.size, self._dp(scratch), self._dp(out)
        )
        return float(out[0])

    def ess_rows(self, w: np.ndarray, scratch: np.ndarray) -> np.ndarray:
        """Per-row ESS of a C-contiguous ``(R, N)`` float64 block."""
        r, n = w.shape
        out = np.empty(r, dtype=np.float64)
        self._lib.ess_rows(self._dp(w), r, n, self._dp(scratch), self._dp(out))
        return out

    def update_weights_row(
        self,
        w64: np.ndarray,
        like: np.ndarray,
        stored: np.ndarray,
        inv_count: float,
        scratch: np.ndarray,
    ) -> None:
        """Fused posterior multiply + normalize of one float32 row.

        ``w64`` is both the prior input and the shadow output.
        """
        self._lib.update_weights_f32(
            self._dp(w64),
            self._dp(like),
            w64.size,
            float(inv_count),
            self._dp(scratch),
            self._fp(stored),
            self._dp(w64),
        )

    def compose_store_row(
        self,
        cos_t: np.ndarray,
        sin_t: np.ndarray,
        dx: np.ndarray,
        dy: np.ndarray,
        dt: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        ts: np.ndarray,
        x64: np.ndarray,
        y64: np.ndarray,
        t64: np.ndarray,
    ) -> None:
        """Fused motion compose + wrap + store of one float32 row.

        The shadow rows are the pose inputs and are updated in place.
        """
        self._lib.compose_store_f32(
            self._dp(cos_t),
            self._dp(sin_t),
            self._dp(dx),
            self._dp(dy),
            self._dp(dt),
            xs.size,
            self._fp(xs),
            self._fp(ys),
            self._fp(ts),
            self._dp(x64),
            self._dp(y64),
            self._dp(t64),
        )

    def resample_row(
        self,
        w64: np.ndarray,
        u0: float,
        xs: np.ndarray,
        ys: np.ndarray,
        ts: np.ndarray,
        x64: np.ndarray,
        y64: np.ndarray,
        t64: np.ndarray,
        c64: np.ndarray,
        s64: np.ndarray,
        dscratch_a: np.ndarray,
        dscratch_b: np.ndarray,
        iscratch: np.ndarray,
        fscratch: np.ndarray,
    ) -> None:
        """Fused wheel + eight-array gather of one float32 row."""
        self._lib.resample_f32(
            self._dp(w64),
            w64.size,
            float(u0),
            self._dp(dscratch_a),
            self._ip(iscratch),
            self._fp(xs),
            self._fp(ys),
            self._fp(ts),
            self._dp(x64),
            self._dp(y64),
            self._dp(t64),
            self._dp(c64),
            self._dp(s64),
            self._fp(fscratch),
            self._dp(dscratch_b),
        )
