"""The ``FilterBackend`` seam: pluggable executors for localization runs.

A backend executes a *batch* of independent localization runs — each one
a (sequence, seed) pair replayed through a fresh filter — against one
shared (grid, config, distance field) context, and returns one
:class:`RunTrace` per run.  Everything above this seam (metrics, sweep
orchestration, campaigns, CLI, benchmarks) is backend-agnostic;
everything below it is free to reorganize the arithmetic, subject to one
invariant:

**The bitwise-equivalence contract.**  Every backend must produce
*bit-for-bit identical* per-run traces and metrics for matching
(sequence, seed) inputs — asserted with exact array equality in
``tests/engine/test_backends.py``, never with tolerances (particle
filters amplify 1-ulp weight differences into divergent resampling
decisions, so "close" is untestable).  Conforming implementations
(a) run every order-sensitive reduction along the last axis through the
deterministic tree of :mod:`repro.engine.reductions` (``det_sum`` et
al. — an explicit, documented order that compiled backends replicate
with a plain loop; BLAS matmul/einsum reductions are not order-safe),
(b) consume each run's ``make_rng(seed, "mcl")`` stream in the
reference draw order, and (c) reassociate only IEEE-commutative
operations.  See docs/architecture.md for the full rules.  The contract
is what makes backend choice and process fan-out pure throughput
decisions, and what lets the campaign result store be content-addressed.

Three backends ship today:

* ``reference`` — the original scalar-per-run loop
  (:class:`~repro.engine.reference.ReferenceBackend`), one
  :class:`~repro.core.mcl.MonteCarloLocalization` per run;
* ``batched`` — :class:`~repro.engine.batched.BatchedBackend`, which
  stacks all R runs' particle populations into ``(R, N)`` arrays and
  advances them in single vectorized passes;
* ``fast`` — :class:`~repro.engine.fast.FastBackend`, the batched run
  loop over fused per-row compiled kernels (numba or cffi C; requires
  one of them, or ``REPRO_FAST_IMPL=numpy`` for the slow fallback).

Further backends plug in by registering a new name — and must either
keep the contract or register under a name that signals the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..common.errors import ConfigurationError

if TYPE_CHECKING:  # imports kept lazy to avoid core <-> engine cycles
    from ..common.geometry import Pose2D
    from ..core.config import MclConfig
    from ..core.snapshot import FilterStateSnapshot
    from ..dataset.recorder import RecordedSequence
    from ..maps.distance_field import DistanceField
    from ..maps.occupancy import OccupancyGrid
    from .replay import ReplayStep


@dataclass(frozen=True)
class RunSpec:
    """One localization run: a recorded sequence replayed under a seed.

    ``tracking_init`` selects the pose-tracking protocol (Gaussian cloud
    around the true start pose) instead of the default global
    localization (uniform over free space).
    """

    sequence: "RecordedSequence"
    seed: int
    tracking_init: bool = False
    tracking_sigma_xy: float = 0.3
    tracking_sigma_theta: float = 0.3


@dataclass
class RunTrace:
    """Raw per-frame output of one run, before metric reduction.

    ``estimate_trace`` is the ``(T, 3)`` estimated pose per frame
    instant; the error arrays are aligned with ``timestamps``.
    """

    timestamps: np.ndarray
    position_errors: np.ndarray
    yaw_errors: np.ndarray
    estimate_trace: np.ndarray
    update_count: int


@dataclass
class StepWork:
    """One packed observation update: rows that share one replay step.

    The serve scheduler (and the batched backend's own run loop) hand a
    :class:`SessionStack` a list of these per step call: every listed row
    fires its movement gate now, consuming the same accumulated motion
    and — when ``step.beams`` is set — the same preprocessed observation
    scored against ``field``.  Rows of different work items in one call
    may belong to different sequences, worlds and distance fields; they
    only share the stack's ``(config, N)``.
    """

    rows: list[int]
    step: "ReplayStep"
    field: "DistanceField"


@runtime_checkable
class SessionStack(Protocol):
    """The step-level entry point of a backend: rows advanced on demand.

    Where :meth:`FilterBackend.execute` runs whole (sequence, seed)
    replays, a session stack exposes the same filter math one
    observation instant at a time, over an open-ended set of *rows* —
    one row per live filter population.  Rows are created
    (:meth:`init_row`), stepped in packed groups (:meth:`step`),
    snapshotted and restored (:meth:`export_row` / :meth:`import_row`)
    independently; all rows share one :class:`MclConfig` (and therefore
    one particle count and storage precision).

    The bitwise-equivalence contract extends to stacks: every row's
    state after any step schedule must be bit-for-bit identical to the
    same (sequence, seed) replay advanced alone through the reference
    loop — regardless of which rows were packed together.  Conforming
    implementations keep all cross-row operations per-row deterministic
    (last-axis reductions, row-wise RNG streams), so packing is a pure
    throughput decision.
    """

    config: "MclConfig"

    def ensure_capacity(self, rows: int) -> None:
        """Grow the stack to hold at least ``rows`` rows."""
        ...

    def init_row(self, row: int, grid: "OccupancyGrid", spec: RunSpec) -> None:
        """(Re)initialize one row exactly like a fresh reference filter."""
        ...

    def step(self, work: Sequence[StepWork]) -> None:
        """Fire one gated update for every row listed across ``work``."""
        ...

    def estimate(self, row: int) -> "Pose2D":
        """The row's current weighted-mean pose estimate."""
        ...

    def estimate_array(self, row: int) -> np.ndarray:
        """The row's current estimate as a ``(3,)`` float64 array."""
        ...

    def updates(self, row: int) -> int:
        """How many gated updates the row has fired."""
        ...

    def export_row(self, row: int) -> "FilterStateSnapshot":
        """Capture the row's complete dynamic state."""
        ...

    def import_row(self, row: int, snapshot: "FilterStateSnapshot") -> None:
        """Resume the row exactly from an exported snapshot."""
        ...


@runtime_checkable
class FilterBackend(Protocol):
    """Executes batches of localization runs behind a common interface."""

    name: str

    def execute(
        self,
        grid: "OccupancyGrid",
        specs: Sequence[RunSpec],
        config: "MclConfig",
        field: "DistanceField | None" = None,
    ) -> list[RunTrace]:
        """Run every spec and return traces in spec order."""
        ...

    def open_stack(self, config: "MclConfig", rows: int = 0) -> SessionStack:
        """Open a step-level :class:`SessionStack` under ``config``."""
        ...


# ----------------------------------------------------------------------
# Telemetry names
# ----------------------------------------------------------------------
# The engine layer's span and counter names live here, on the seam both
# stack implementations import, so batched and fast report under one
# catalog (docs/observability.md).  Instrumentation goes through
# :mod:`repro.obs` accessors only — when telemetry is disabled they
# return shared no-op singletons, and nothing here may ever touch RNG
# or numeric state (the bitwise contract above extends to telemetry:
# traces with spans active are bit-identical to spans off).
SPAN_TRANSFORM = "engine.step.transform"
SPAN_GATHER = "engine.step.gather"
SPAN_WEIGHT = "engine.step.weight"
SPAN_RESAMPLE = "engine.step.resample"
SPAN_ESTIMATE = "engine.step.estimate"
COUNTER_STEPS = "engine.steps"
COUNTER_GATE_TRIGGERS = "engine.gate_triggers"
COUNTER_RESAMPLES = "engine.resamples"
COUNTER_RESAMPLE_SKIPS = "engine.resample_skips"
COUNTER_PLAN_HITS = "engine.replay_plan.hits"
COUNTER_PLAN_MISSES = "engine.replay_plan.misses"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: dict[str, Callable[[], FilterBackend]] = {}


def register_backend(name: str, factory: Callable[[], FilterBackend]) -> None:
    """Register a backend factory under a CLI-selectable name."""
    _FACTORIES[name] = factory


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (and the ``--backend`` flag)."""
    _ensure_builtin_backends()
    return tuple(sorted(_FACTORIES))


def get_backend(backend: "str | FilterBackend") -> FilterBackend:
    """Resolve a backend name (or pass an instance through)."""
    if not isinstance(backend, str):
        return backend
    _ensure_builtin_backends()
    if backend not in _FACTORIES:
        valid = ", ".join(sorted(_FACTORIES))
        raise ConfigurationError(
            f"unknown filter backend {backend!r}; expected one of: {valid}"
        )
    return _FACTORIES[backend]()


def _ensure_builtin_backends() -> None:
    """Register the built-in backends on first use (lazily: the concrete
    implementations import ``core`` modules, which themselves import the
    engine kernels)."""
    if (
        "reference" in _FACTORIES
        and "batched" in _FACTORIES
        and "fast" in _FACTORIES
    ):
        return
    from .batched import BatchedBackend
    from .fast import FastBackend
    from .reference import ReferenceBackend

    # "fast" always registers (so listings and CLI choices are
    # environment-independent); constructing it raises a clear
    # ConfigurationError when no fused implementation is available.
    _FACTORIES.setdefault("reference", ReferenceBackend)
    _FACTORIES.setdefault("batched", BatchedBackend)
    _FACTORIES.setdefault("fast", FastBackend)
