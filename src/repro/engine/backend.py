"""The ``FilterBackend`` seam: pluggable executors for localization runs.

A backend executes a *batch* of independent localization runs — each one
a (sequence, seed) pair replayed through a fresh filter — against one
shared (grid, config, distance field) context, and returns one
:class:`RunTrace` per run.  Everything above this seam (metrics, sweep
orchestration, campaigns, CLI, benchmarks) is backend-agnostic;
everything below it is free to reorganize the arithmetic, subject to one
invariant:

**The bitwise-equivalence contract.**  Every backend must produce
*bit-for-bit identical* per-run traces and metrics for matching
(sequence, seed) inputs — asserted with exact array equality in
``tests/engine/test_backends.py``, never with tolerances (particle
filters amplify 1-ulp weight differences into divergent resampling
decisions, so "close" is untestable).  Conforming implementations
(a) reduce only along the last contiguous axis (numpy's pairwise sum is
then per-row deterministic; BLAS matmul/einsum reductions are not
order-safe), (b) consume each run's ``make_rng(seed, "mcl")`` stream in
the reference draw order, and (c) reassociate only IEEE-commutative
operations.  See docs/architecture.md for the full rules.  The contract
is what makes backend choice and process fan-out pure throughput
decisions, and what lets the campaign result store be content-addressed.

Two backends ship today:

* ``reference`` — the original scalar-per-run loop
  (:class:`~repro.engine.reference.ReferenceBackend`), one
  :class:`~repro.core.mcl.MonteCarloLocalization` per run;
* ``batched`` — :class:`~repro.engine.batched.BatchedBackend`, which
  stacks all R runs' particle populations into ``(R, N)`` arrays and
  advances them in single vectorized passes.

Future numba/GPU backends plug in by registering a new name — and must
either keep the contract or register under a name that signals the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from ..common.errors import ConfigurationError

if TYPE_CHECKING:  # imports kept lazy to avoid core <-> engine cycles
    from ..core.config import MclConfig
    from ..dataset.recorder import RecordedSequence
    from ..maps.distance_field import DistanceField
    from ..maps.occupancy import OccupancyGrid


@dataclass(frozen=True)
class RunSpec:
    """One localization run: a recorded sequence replayed under a seed.

    ``tracking_init`` selects the pose-tracking protocol (Gaussian cloud
    around the true start pose) instead of the default global
    localization (uniform over free space).
    """

    sequence: "RecordedSequence"
    seed: int
    tracking_init: bool = False
    tracking_sigma_xy: float = 0.3
    tracking_sigma_theta: float = 0.3


@dataclass
class RunTrace:
    """Raw per-frame output of one run, before metric reduction.

    ``estimate_trace`` is the ``(T, 3)`` estimated pose per frame
    instant; the error arrays are aligned with ``timestamps``.
    """

    timestamps: np.ndarray
    position_errors: np.ndarray
    yaw_errors: np.ndarray
    estimate_trace: np.ndarray
    update_count: int


@runtime_checkable
class FilterBackend(Protocol):
    """Executes batches of localization runs behind a common interface."""

    name: str

    def execute(
        self,
        grid: "OccupancyGrid",
        specs: Sequence[RunSpec],
        config: "MclConfig",
        field: "DistanceField | None" = None,
    ) -> list[RunTrace]:
        """Run every spec and return traces in spec order."""
        ...


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: dict[str, Callable[[], FilterBackend]] = {}


def register_backend(name: str, factory: Callable[[], FilterBackend]) -> None:
    """Register a backend factory under a CLI-selectable name."""
    _FACTORIES[name] = factory


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (and the ``--backend`` flag)."""
    _ensure_builtin_backends()
    return tuple(sorted(_FACTORIES))


def get_backend(backend: "str | FilterBackend") -> FilterBackend:
    """Resolve a backend name (or pass an instance through)."""
    if not isinstance(backend, str):
        return backend
    _ensure_builtin_backends()
    if backend not in _FACTORIES:
        valid = ", ".join(sorted(_FACTORIES))
        raise ConfigurationError(
            f"unknown filter backend {backend!r}; expected one of: {valid}"
        )
    return _FACTORIES[backend]()


def _ensure_builtin_backends() -> None:
    """Register the built-in backends on first use (lazily: the concrete
    implementations import ``core`` modules, which themselves import the
    engine kernels)."""
    if "reference" in _FACTORIES and "batched" in _FACTORIES:
        return
    from .batched import BatchedBackend
    from .reference import ReferenceBackend

    _FACTORIES.setdefault("reference", ReferenceBackend)
    _FACTORIES.setdefault("batched", BatchedBackend)
