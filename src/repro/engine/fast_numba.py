"""numba provider of the ``fast`` backend: nopython fused kernels.

Statement-for-statement mirror of the C provider
(:mod:`repro.engine.fast_c`) in ``@njit(nopython)`` form, for
environments with numba but no C toolchain.  The same bitwise rules
apply — and two deserve emphasis because numba makes them easy to break:

* ``fastmath`` stays **off**: it licenses reassociation and FMA
  contraction, either of which changes the deterministic-tree sums.
* No transcendentals inside jitted code — ``sin``/``cos`` come in as
  numpy-computed arrays, exactly like the C tier, because numba lowers
  ``math.sin`` to libm while numpy uses its own SIMD implementations
  (they may disagree by one ulp).

Importing this module raises ``ImportError`` when numba is missing;
availability policy lives in :mod:`repro.engine.fast`.
"""

from __future__ import annotations

import math

import numpy as np
from numba import njit

DET_CHUNK = 8


@njit(cache=False, fastmath=False)
def _det_sum_inplace(v, n):
    """Chunk-of-8 deterministic tree sum, destroying ``v[:n]``."""
    m = n
    while m > 1:
        out = (m + DET_CHUNK - 1) // DET_CHUNK
        for j in range(out):
            lo = j * DET_CHUNK
            hi = min(lo + DET_CHUNK, m)
            acc = v[lo]
            for i in range(lo + 1, hi):
                acc += v[i]
            v[j] = acc
        m = out
    if m == 1:
        return v[0]
    return 0.0


@njit(cache=False, fastmath=False)
def _det_dot_scratch(w, v, n, scratch):
    for i in range(n):
        scratch[i] = w[i] * v[i]
    return _det_sum_inplace(scratch, n)


@njit(cache=False, fastmath=False)
def _fused_loglik_f64(
    x, y, cos_t, sin_t, end_x, end_y, sq_table, rows, cols,
    origin_x, origin_y, resolution, border_sq, m, k, beam_scratch, out
):
    size = rows * cols
    for i in range(m):
        xi = x[i]
        yi = y[i]
        ci = cos_t[i]
        si = sin_t[i]
        for b in range(k):
            wx = (ci * end_x[b] + xi) - si * end_y[b]
            wy = (si * end_x[b] + yi) + ci * end_y[b]
            col = np.int64(np.floor((wx - origin_x) / resolution))
            row = np.int64(np.floor((wy - origin_y) / resolution))
            inside = (row >= 0) and (row < rows) and (col >= 0) and (col < cols)
            flat = row * cols + col
            if flat < 0:
                flat = 0
            if flat >= size:
                flat = size - 1
            if inside:
                beam_scratch[b] = sq_table[flat]
            else:
                beam_scratch[b] = border_sq
        out[i] = _det_sum_inplace(beam_scratch, k)


@njit(cache=False, fastmath=False)
def _fused_loglik_u8(
    x, y, cos_t, sin_t, end_x, end_y, codes, sq_lut, rows, cols,
    origin_x, origin_y, resolution, border_sq, m, k, beam_scratch, out
):
    size = rows * cols
    for i in range(m):
        xi = x[i]
        yi = y[i]
        ci = cos_t[i]
        si = sin_t[i]
        for b in range(k):
            wx = (ci * end_x[b] + xi) - si * end_y[b]
            wy = (si * end_x[b] + yi) + ci * end_y[b]
            col = np.int64(np.floor((wx - origin_x) / resolution))
            row = np.int64(np.floor((wy - origin_y) / resolution))
            inside = (row >= 0) and (row < rows) and (col >= 0) and (col < cols)
            flat = row * cols + col
            if flat < 0:
                flat = 0
            if flat >= size:
                flat = size - 1
            if inside:
                beam_scratch[b] = sq_lut[codes[flat]]
            else:
                beam_scratch[b] = border_sq
        out[i] = _det_sum_inplace(beam_scratch, k)


@njit(cache=False, fastmath=False)
def _estimate_row(x, y, sin_t, cos_t, w, total, n, wn, scratch, out):
    for i in range(n):
        wn[i] = w[i] / total
    for i in range(n):
        scratch[i] = wn[i]
    out[0] = _det_sum_inplace(scratch, n)
    out[1] = _det_dot_scratch(wn, x, n, scratch)
    out[2] = _det_dot_scratch(wn, y, n, scratch)
    out[3] = _det_dot_scratch(wn, sin_t, n, scratch)
    out[4] = _det_dot_scratch(wn, cos_t, n, scratch)


@njit(cache=False, fastmath=False)
def _wheel_resample(w, n, u0, cumulative, idx):
    acc = 0.0
    for i in range(n):
        acc += w[i]
        cumulative[i] = acc
    cumulative[n - 1] = 1.0
    j = 0
    for i in range(n):
        pos = u0 + np.float64(i) / np.float64(n)
        while cumulative[j] <= pos and j < n - 1:
            j += 1
        idx[i] = j


@njit(cache=False, fastmath=False)
def _det_wrap(a):
    """wrap_angle with numpy remainder semantics (math.fmod is exact)."""
    mod = math.fmod(a + np.pi, 2.0 * np.pi)
    if mod != 0.0:
        if mod < 0.0:
            mod += 2.0 * np.pi
    else:
        mod = 0.0
    return mod - np.pi


@njit(cache=False, fastmath=False)
def _det_sum_rows(a, r, n, scratch, out):
    for row in range(r):
        for i in range(n):
            scratch[i] = a[row * n + i]
        out[row] = _det_sum_inplace(scratch, n)


@njit(cache=False, fastmath=False)
def _ess_rows(w, r, n, scratch, out):
    for row in range(r):
        base = row * n
        for i in range(n):
            scratch[i] = w[base + i]
        total = _det_sum_inplace(scratch, n)
        if not total > 0.0:
            out[row] = 0.0
            continue
        for i in range(n):
            wn = w[base + i] / total
            scratch[i] = wn * wn
        sq = _det_sum_inplace(scratch, n)
        out[row] = 1.0 / (sq if sq > 0.0 else 1.0)


@njit(cache=False, fastmath=False)
def _update_weights_f32(prior, like, n, inv_count, scratch, stored, shadow):
    for i in range(n):
        u = prior[i] * like[i]
        sf = np.float32(u)
        s = np.float64(sf)
        if not np.isfinite(s):
            s = 0.0
        shadow[i] = s
        scratch[i] = s
    total = _det_sum_inplace(scratch, n)
    if total > 0.0:
        for i in range(n):
            o = np.float32(shadow[i] / total)
            stored[i] = o
            shadow[i] = np.float64(o)
    else:
        o = np.float32(inv_count)
        od = np.float64(o)
        for i in range(n):
            stored[i] = o
            shadow[i] = od


@njit(cache=False, fastmath=False)
def _compose_store_f32(cos_t, sin_t, dx, dy, dt, n, xs, ys, ts, x64, y64, t64):
    for i in range(n):
        nx = (x64[i] + cos_t[i] * dx[i]) - sin_t[i] * dy[i]
        ny = (y64[i] + sin_t[i] * dx[i]) + cos_t[i] * dy[i]
        nt = _det_wrap(_det_wrap(t64[i] + dt[i]))
        fx = np.float32(nx)
        fy = np.float32(ny)
        ft = np.float32(nt)
        xs[i] = fx
        ys[i] = fy
        ts[i] = ft
        x64[i] = np.float64(fx)
        y64[i] = np.float64(fy)
        t64[i] = np.float64(ft)


@njit(cache=False, fastmath=False)
def _resample_f32(
    w, n, u0, cumulative, idx, xs, ys, ts, x64, y64, t64, c64, s64,
    fscratch, dscratch
):
    _wheel_resample(w, n, u0, cumulative, idx)
    for i in range(n):
        fscratch[i] = xs[idx[i]]
    for i in range(n):
        xs[i] = fscratch[i]
    for i in range(n):
        fscratch[i] = ys[idx[i]]
    for i in range(n):
        ys[i] = fscratch[i]
    for i in range(n):
        fscratch[i] = ts[idx[i]]
    for i in range(n):
        ts[i] = fscratch[i]
    for i in range(n):
        dscratch[i] = x64[idx[i]]
    for i in range(n):
        x64[i] = dscratch[i]
    for i in range(n):
        dscratch[i] = y64[idx[i]]
    for i in range(n):
        y64[i] = dscratch[i]
    for i in range(n):
        dscratch[i] = t64[idx[i]]
    for i in range(n):
        t64[i] = dscratch[i]
    for i in range(n):
        dscratch[i] = c64[idx[i]]
    for i in range(n):
        c64[i] = dscratch[i]
    for i in range(n):
        dscratch[i] = s64[idx[i]]
    for i in range(n):
        s64[i] = dscratch[i]


class NumbaProvider:
    """Fused-kernel provider backed by numba nopython JIT."""

    name = "numba"
    #: Offers the fully fused float32 row paths, like the C tier.
    fused_f32 = True

    def loglik_sums(self, x, y, cos_t, sin_t, end_x, end_y, field):
        from ..maps.distance_field import FieldKind

        m = x.size
        k = end_x.size
        flat_x = np.ascontiguousarray(x).reshape(-1)
        flat_y = np.ascontiguousarray(y).reshape(-1)
        flat_cos = np.ascontiguousarray(cos_t).reshape(-1)
        flat_sin = np.ascontiguousarray(sin_t).reshape(-1)
        end_x = np.ascontiguousarray(end_x, dtype=np.float64)
        end_y = np.ascontiguousarray(end_y, dtype=np.float64)
        out = np.empty(m, dtype=np.float64)
        beam_scratch = np.empty(max(k, 1), dtype=np.float64)
        rows, cols = field.data.shape
        if field.kind is FieldKind.QUANTIZED_U8:
            _fused_loglik_u8(
                flat_x, flat_y, flat_cos, flat_sin, end_x, end_y,
                field.data.reshape(-1), field.squared_lut(),
                rows, cols, field.origin_x, field.origin_y,
                field.resolution, field.border_squared(), m, k,
                beam_scratch, out,
            )
        else:
            _fused_loglik_f64(
                flat_x, flat_y, flat_cos, flat_sin, end_x, end_y,
                field.squared_table(), rows, cols,
                field.origin_x, field.origin_y, field.resolution,
                field.border_squared(), m, k, beam_scratch, out,
            )
        return out.reshape(x.shape)

    def estimate_row(self, x, y, sin_t, cos_t, w, total, scratch_a, scratch_b):
        out = np.empty(5, dtype=np.float64)
        _estimate_row(
            x, y, sin_t, cos_t, w, float(total), x.size, scratch_a, scratch_b, out
        )
        return float(out[0]), float(out[1]), float(out[2]), float(out[3]), float(out[4])

    def resample_indices(self, w, u0, scratch):
        idx = np.empty(w.size, dtype=np.int64)
        _wheel_resample(w, w.size, float(u0), scratch, idx)
        return idx

    def det_sum_row(self, a, scratch):
        out = np.empty(1, dtype=np.float64)
        _det_sum_rows(a.reshape(-1), 1, a.size, scratch, out)
        return float(out[0])

    def ess_rows(self, w, scratch):
        r, n = w.shape
        out = np.empty(r, dtype=np.float64)
        _ess_rows(np.ascontiguousarray(w).reshape(-1), r, n, scratch, out)
        return out

    def update_weights_row(self, w64, like, stored, inv_count, scratch):
        _update_weights_f32(w64, like, w64.size, float(inv_count), scratch, stored, w64)

    def compose_store_row(self, cos_t, sin_t, dx, dy, dt, xs, ys, ts, x64, y64, t64):
        _compose_store_f32(cos_t, sin_t, dx, dy, dt, xs.size, xs, ys, ts, x64, y64, t64)

    def resample_row(
        self, w64, u0, xs, ys, ts, x64, y64, t64, c64, s64,
        dscratch_a, dscratch_b, iscratch, fscratch,
    ):
        _resample_f32(
            w64, w64.size, float(u0), dscratch_a, iscratch,
            xs, ys, ts, x64, y64, t64, c64, s64, fscratch, dscratch_b,
        )
