"""Replay plans: the seed-invariant skeleton of a sequence replay.

Replaying a recorded (or generated) flight through the filter has two
kinds of work: the *seed-dependent* particle math, and everything that
is a pure function of the sequence plus the gating/beam configuration —
odometry accumulation, the movement-trigger trace, frame
materialization, beam extraction, ground-truth poses.  A
:class:`ReplayPlan` precomputes the latter once, operation-for-operation
identical to the reference loop, so it can be shared by every seed of
every sweep cell (batched backend) and by every live session replaying
that sequence (serve layer).

This module is backend-neutral on purpose: the plan describes *what the
filter will be offered at each instant*, not how any executor advances
its particles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.geometry import Pose2D
from ..core.config import MclConfig
from ..core.observation import BeamBundle, extract_beams
from ..dataset.recorder import RecordedSequence


@dataclass
class ReplayStep:
    """What one observation instant of a sequence holds for the filter.

    ``fires`` is the movement-gate decision (identical for every run of
    the sequence — the gate reads odometry only); when it fires,
    ``pending`` is the accumulated body-frame motion the update consumes
    and ``beams``/``end_x``/``end_y`` the preprocessed observation.
    """

    fires: bool
    pending: Pose2D | None = None
    beams: BeamBundle | None = None
    end_x: np.ndarray | None = None
    end_y: np.ndarray | None = None


class ReplayPlan:
    """Everything about replaying one sequence that no seed changes.

    Replicates the reference loop's odometry accumulation and movement
    gating operation-for-operation, and hoists frame materialization,
    beam extraction and ground-truth pose construction out of the
    per-run (and per-cell) hot path.
    """

    def __init__(self, sequence: RecordedSequence, config: MclConfig) -> None:
        self.sequence = sequence  # strong ref keeps the cache key stable
        self.length = len(sequence)
        self.timestamps = [float(t) for t in sequence.timestamps]
        self.ground_truth = [
            sequence.ground_truth_pose(t) for t in range(self.length)
        ]
        self.steps: list[ReplayStep] = []

        pending = Pose2D.identity()
        previous = sequence.odometry_pose(0)
        for t in range(self.length):
            if t > 0:
                odometry = sequence.odometry_pose(t)
                pending = pending.compose(previous.between(odometry))
                previous = odometry
            if not config.movement_trigger(pending.x, pending.y, pending.theta):
                self.steps.append(ReplayStep(fires=False))
                continue
            timestamp = self.timestamps[t]
            frames = [track.frame(t, timestamp) for track in sequence.tracks]
            beams = extract_beams(frames, config)
            step = ReplayStep(fires=True, pending=pending)
            if beams.beam_count:
                step.beams = beams
                step.end_x, step.end_y = beams.endpoints_body()
            self.steps.append(step)
            pending = Pose2D.identity()

    @staticmethod
    def signature(config: MclConfig) -> tuple:
        """The config facets a plan depends on (gating + beam filtering)."""
        return (
            config.d_xy,
            config.d_theta,
            config.use_rear_sensor,
            config.beam_rows,
            config.max_beam_range_m,
        )
