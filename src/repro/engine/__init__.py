"""Pluggable filter-backend layer: numeric kernels + run executors.

``repro.engine`` owns the filter's arithmetic (``kernels``) and the
:class:`FilterBackend` seam that the evaluation stack dispatches runs
through.  The ``core`` modules delegate their math to the kernels; the
concrete backends (``reference``, ``batched``) are loaded lazily because
they build on ``core`` — see :mod:`repro.engine.backend`.
"""

from . import kernels
from .backend import (
    FilterBackend,
    RunSpec,
    RunTrace,
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "kernels",
    "FilterBackend",
    "RunSpec",
    "RunTrace",
    "available_backends",
    "get_backend",
    "register_backend",
    "BatchedBackend",
    "ReferenceBackend",
]


def __getattr__(name: str):
    # Lazy: ReferenceBackend/BatchedBackend import repro.core, which in
    # turn imports repro.engine.kernels — resolving them here at first
    # attribute access keeps the package import acyclic.
    if name == "ReferenceBackend":
        from .reference import ReferenceBackend

        return ReferenceBackend
    if name == "BatchedBackend":
        from .batched import BatchedBackend

        return BatchedBackend
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
