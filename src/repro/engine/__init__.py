"""Pluggable filter-backend layer: numeric kernels + run executors.

``repro.engine`` owns the filter's arithmetic (``kernels``) and the
:class:`FilterBackend` seam that the evaluation stack dispatches runs
through.  The ``core`` modules delegate their math to the kernels; the
concrete backends (``reference``, ``batched``, ``fast``) are loaded
lazily because they build on ``core`` — see :mod:`repro.engine.backend`.
"""

from . import kernels, reductions
from .backend import (
    FilterBackend,
    RunSpec,
    RunTrace,
    SessionStack,
    StepWork,
    available_backends,
    get_backend,
    register_backend,
)

__all__ = [
    "kernels",
    "reductions",
    "FilterBackend",
    "RunSpec",
    "RunTrace",
    "SessionStack",
    "StepWork",
    "available_backends",
    "get_backend",
    "register_backend",
    "BatchedBackend",
    "FastBackend",
    "FastStack",
    "ParticleStack",
    "ReferenceBackend",
    "ReferenceStack",
    "ReplayPlan",
    "ReplayStep",
]

#: Lazily resolved names -> defining submodule.  The concrete backends,
#: stacks and replay plans import ``repro.core``, which in turn imports
#: ``repro.engine.kernels`` — resolving them at first attribute access
#: keeps the package import acyclic.
_LAZY = {
    "ReferenceBackend": "reference",
    "ReferenceStack": "reference",
    "BatchedBackend": "batched",
    "ParticleStack": "batched",
    "FastBackend": "fast",
    "FastStack": "fast",
    "ReplayPlan": "replay",
    "ReplayStep": "replay",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f".{_LAZY[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
