"""Array-level numeric kernels of the MCL filter.

Every arithmetic step of the filter loop — motion sampling, beam
transform + EDT lookup + log-likelihood, weight update, ESS, systematic
resampling, weighted pose estimate — lives here as a pure function over
raw arrays.  The ``core`` modules keep their public APIs but delegate the
math to these kernels; the batched backend calls the same kernels on
``(R, N)`` stacks of R independent runs.

Bitwise-reproducibility contract
--------------------------------
Backends are required to produce *identical* per-run results, so every
kernel is written to give the same floating-point answer whether it is
applied to one run's ``(N,)`` arrays or to a row of an ``(R, N)`` stack:

* elementwise ops (compose, transform, exp, casts) are trivially
  shape-independent;
* reductions always run along the **last (contiguous) axis**, where numpy
  applies the same pairwise summation per row as it does for a flat
  ``(N,)`` array;
* order-dependent scans (``cumsum``/``searchsorted`` in the resampling
  wheel) are only ever invoked per run.

This contract is what lets the equivalence tests assert exact equality
between the reference and batched backends instead of fragile tolerances.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import ConfigurationError
from ..common.geometry import circular_mean, wrap_angle
from ..maps.distance_field import DistanceField

__all__ = [
    "sample_motion_noise",
    "compose_increment",
    "transform_endpoints",
    "beam_log_likelihoods",
    "posterior_log_weights",
    "normalize_weights",
    "effective_sample_size",
    "draw_wheel_offset",
    "systematic_resample",
    "weighted_mean_pose",
    "weighted_pose_spread",
]


# ----------------------------------------------------------------------
# Motion model
# ----------------------------------------------------------------------
def sample_motion_noise(
    rng: np.random.Generator, count: int, sigma_xy: float, sigma_theta: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw one run's per-particle odometry noise (x, y, theta) triple.

    The three draws happen in this fixed order so every backend advances a
    run's RNG stream identically.
    """
    noise_x = rng.normal(0.0, sigma_xy, size=count)
    noise_y = rng.normal(0.0, sigma_xy, size=count)
    noise_theta = rng.normal(0.0, sigma_theta, size=count)
    return noise_x, noise_y, noise_theta


def compose_increment(
    x: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    dx: np.ndarray,
    dy: np.ndarray,
    dtheta: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply body-frame increments to pose arrays of any leading shape.

    All inputs broadcast together; yaw is wrapped to ``[-pi, pi)``.  For
    ``(N,)`` inputs this is exactly :func:`repro.common.geometry.compose_arrays`.
    """
    cos_t = np.cos(theta)
    sin_t = np.sin(theta)
    new_x = x + cos_t * dx - sin_t * dy
    new_y = y + sin_t * dx + cos_t * dy
    new_theta = wrap_angle(np.asarray(theta + dtheta))
    return new_x, new_y, new_theta


# ----------------------------------------------------------------------
# Observation model
# ----------------------------------------------------------------------
def transform_endpoints(
    x: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    end_x: np.ndarray,
    end_y: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Map body-frame beam end points into the world frame.

    ``x, y, theta`` have shape ``(..., N)``; ``end_x, end_y`` shape
    ``(K,)``.  Returns two ``(..., N, K)`` arrays covering every
    (pose, end point) combination.

    The in-place formulation allocates three full-size temporaries
    instead of eight while producing bit-identical results: the only
    reassociation is ``x + cos*ex`` -> ``cos*ex + x``, and IEEE-754
    addition is commutative.
    """
    cos_t = np.cos(theta)[..., None]
    sin_t = np.sin(theta)[..., None]
    # world_x = (x + cos_t * end_x) - sin_t * end_y
    world_x = cos_t * end_x
    world_x += x[..., None]
    scratch = sin_t * end_y
    world_x -= scratch
    # world_y = (y + sin_t * end_x) + cos_t * end_y
    world_y = np.multiply(sin_t, end_x, out=scratch)  # reuses scratch storage
    world_y += y[..., None]
    world_y += cos_t * end_y
    return world_x, world_y


def beam_log_likelihoods(
    x: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    end_x: np.ndarray,
    end_y: np.ndarray,
    field: DistanceField,
    sigma_obs: float,
) -> np.ndarray:
    """Beam-end-point observation log-likelihood, shape ``(..., N)``.

    Transforms every (pose, beam) end point into the map, looks up the
    truncated EDT, and sums ``-d^2 / (2 sigma_obs^2)`` over beams (the
    Gaussian normalization constant cancels during weight normalization).
    """
    world_x, world_y = transform_endpoints(x, y, theta, end_x, end_y)
    squared = field.lookup_squared_world(world_x, world_y)
    log_lik = np.sum(squared, axis=-1)
    np.negative(log_lik, out=log_lik)
    log_lik /= 2.0 * sigma_obs**2
    return log_lik


def posterior_log_weights(
    weights: np.ndarray, log_lik: np.ndarray, replication: float
) -> np.ndarray:
    """Unnormalized posterior weights in float64, shape ``(..., N)``.

    Replicates the per-beam likelihood, subtracts the per-run max
    log-likelihood (so fp16 storage cannot underflow to all-zero), and
    multiplies into the prior weights.
    """
    log_lik = log_lik * replication
    log_lik = log_lik - log_lik.max(axis=-1, keepdims=True)
    return np.asarray(weights, dtype=np.float64) * np.exp(log_lik)


def normalize_weights(weights: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Normalize storage-precision weights in-place along the last axis.

    The sum runs in float64 (the paper's parallel implementation keeps a
    full-precision accumulator per core for the same reason).  Degenerate
    rows — all weights zero or non-finite — are reset to uniform: the
    filter lost, but must stay operational.  Returns the per-row
    pre-normalization sums (float64, shape ``(...)``).
    """
    count = weights.shape[-1]
    as64 = weights.astype(np.float64)
    as64[~np.isfinite(as64)] = 0.0
    totals = as64.sum(axis=-1, keepdims=True)
    degenerate = ~(totals > 0.0)
    normalized = as64 / np.where(degenerate, 1.0, totals)
    normalized = np.where(degenerate, 1.0 / count, normalized)
    weights[...] = normalized.astype(dtype)
    return np.squeeze(totals, axis=-1)


def effective_sample_size(weights: np.ndarray) -> np.ndarray | float:
    """ESS = 1 / sum(w^2) along the last axis; 0.0 for degenerate rows.

    Accepts ``(N,)`` (returns a float, matching
    :meth:`ParticleSet.effective_sample_size`) or ``(R, N)`` (returns an
    ``(R,)`` array with the identical per-row values).
    """
    as64 = weights.astype(np.float64)
    totals = as64.sum(axis=-1, keepdims=True)
    valid = totals > 0.0
    normalized = as64 / np.where(valid, totals, 1.0)
    squared = np.sum(normalized**2, axis=-1)
    # A valid row's squared sum is >= 1/N > 0, so the guarded divide only
    # papers over rows already forced to ESS 0.
    ess = np.where(
        np.squeeze(valid, axis=-1), 1.0 / np.where(squared > 0.0, squared, 1.0), 0.0
    )
    if ess.ndim == 0:
        return float(ess)
    return ess


# ----------------------------------------------------------------------
# Systematic (wheel) resampling
# ----------------------------------------------------------------------
def draw_wheel_offset(rng: np.random.Generator, count: int) -> float:
    """Draw the single random number of systematic resampling.

    Returns ``u0`` uniform in ``[0, 1/N)``; arrow ``i`` then sits at
    normalized position ``u0 + i / N``.
    """
    return float(rng.uniform(0.0, 1.0 / count))


def _normalized(weights: np.ndarray) -> np.ndarray:
    """Validate one run's weights and normalize them in float64."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ConfigurationError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ConfigurationError("weights must be finite and non-negative")
    total = weights.sum()
    if total <= 0:
        raise ConfigurationError("weights must not sum to zero")
    return weights / total


def systematic_resample(
    weights: np.ndarray, u0: float, validate: bool = True
) -> np.ndarray:
    """Serial systematic resampling; returns N source indices.

    ``u0`` must lie in ``[0, 1/N)`` (use :func:`draw_wheel_offset`).
    The returned indices are non-decreasing, and each particle ``i`` is
    drawn either ``floor(N w_i)`` or ``ceil(N w_i)`` times — the classic
    low-variance guarantees.

    ``validate=False`` skips the input sanity checks (pure reads, no
    effect on the result) — for backends resampling many runs per step
    whose weights are normalized by construction.
    """
    if validate:
        weights = _normalized(weights)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights / weights.sum()
    count = weights.size
    if validate and not 0.0 <= u0 < 1.0 / count:
        raise ConfigurationError(f"u0 must be in [0, 1/N), got {u0}")
    positions = u0 + np.arange(count, dtype=np.float64) / count
    cumulative = np.cumsum(weights)
    cumulative[-1] = 1.0  # guard against rounding shortfall
    return np.searchsorted(cumulative, positions, side="right").astype(np.int64)


# ----------------------------------------------------------------------
# Pose estimation
# ----------------------------------------------------------------------
def weighted_mean_pose(
    x: np.ndarray, y: np.ndarray, theta: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, float, float, float]:
    """Weighted mean pose of one run's population.

    Returns ``(normalized_weights, mean_x, mean_y, mean_theta)``; the
    normalized float64 weights are handed back so spread statistics can
    reuse them.  A degenerate population falls back to the unweighted
    mean, exactly like the filter's defensive re-normalization.
    """
    weights = weights.astype(np.float64)
    total = weights.sum()
    if total <= 0 or not np.isfinite(total):
        weights = np.full(x.size, 1.0 / x.size)
    else:
        weights = weights / total
    mean_x = float(np.dot(weights, x))
    mean_y = float(np.dot(weights, y))
    mean_theta = circular_mean(theta, weights)
    return weights, mean_x, mean_y, mean_theta


def weighted_pose_spread(
    x: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    weights: np.ndarray,
    mean_x: float,
    mean_y: float,
) -> tuple[np.ndarray, float]:
    """Position covariance and circular yaw std around a weighted mean.

    ``weights`` must already be normalized (as returned by
    :func:`weighted_mean_pose`).
    """
    dx = x - mean_x
    dy = y - mean_y
    cov = np.empty((2, 2), dtype=np.float64)
    cov[0, 0] = float(np.dot(weights, dx * dx))
    cov[0, 1] = cov[1, 0] = float(np.dot(weights, dx * dy))
    cov[1, 1] = float(np.dot(weights, dy * dy))

    # Circular spread: R = |weighted mean resultant|, std = sqrt(-2 ln R).
    resultant = complex(
        float(np.dot(weights, np.cos(theta))), float(np.dot(weights, np.sin(theta)))
    )
    r_len = min(abs(resultant), 1.0)
    yaw_std = math.sqrt(max(-2.0 * math.log(max(r_len, 1e-12)), 0.0))
    return cov, yaw_std
