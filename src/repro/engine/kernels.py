"""Array-level numeric kernels of the MCL filter.

Every arithmetic step of the filter loop — motion sampling, beam
transform + EDT lookup + log-likelihood, weight update, ESS, systematic
resampling, weighted pose estimate — lives here as a pure function over
raw arrays.  The ``core`` modules keep their public APIs but delegate the
math to these kernels; the batched backend calls the same kernels on
``(R, N)`` stacks of R independent runs.

Bitwise-reproducibility contract
--------------------------------
Backends are required to produce *identical* per-run results, so every
kernel is written to give the same floating-point answer whether it is
applied to one run's ``(N,)`` arrays or to a row of an ``(R, N)`` stack:

* elementwise ops (compose, transform, exp, casts) are trivially
  shape-independent;
* every order-sensitive reduction runs along the **last axis** through
  the explicit deterministic tree of :mod:`repro.engine.reductions`
  (``det_sum`` / ``det_dot`` / ``det_sum_squares``) — a documented
  chunk-of-8 reduction order that JIT/compiled backends replicate with
  a plain loop instead of reverse-engineering numpy's pairwise-sum
  blocking;
* order-dependent scans (``cumsum``/``searchsorted`` in the resampling
  wheel) are only ever invoked per run.

This contract is what lets the equivalence tests assert exact equality
between the reference, batched and fast backends instead of fragile
tolerances.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import ConfigurationError
from ..common.geometry import wrap_angle
from ..maps.distance_field import DistanceField
from .reductions import det_dot, det_sum, det_sum_squares

__all__ = [
    "sample_motion_noise",
    "compose_increment",
    "transform_endpoints",
    "beam_log_likelihoods",
    "posterior_log_weights",
    "normalize_weights",
    "effective_sample_size",
    "draw_wheel_offset",
    "systematic_resample",
    "weighted_mean_pose",
    "weighted_pose_spread",
]


# ----------------------------------------------------------------------
# Motion model
# ----------------------------------------------------------------------
def sample_motion_noise(
    rng: np.random.Generator, count: int, sigma_xy: float, sigma_theta: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw one run's per-particle odometry noise (x, y, theta) triple.

    The three draws happen in this fixed order so every backend advances a
    run's RNG stream identically.
    """
    noise_x = rng.normal(0.0, sigma_xy, size=count)
    noise_y = rng.normal(0.0, sigma_xy, size=count)
    noise_theta = rng.normal(0.0, sigma_theta, size=count)
    return noise_x, noise_y, noise_theta


def compose_increment(
    x: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    dx: np.ndarray,
    dy: np.ndarray,
    dtheta: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply body-frame increments to pose arrays of any leading shape.

    All inputs broadcast together; yaw is wrapped to ``[-pi, pi)``.  For
    ``(N,)`` inputs this is exactly :func:`repro.common.geometry.compose_arrays`.
    """
    cos_t = np.cos(theta)
    sin_t = np.sin(theta)
    new_x = x + cos_t * dx - sin_t * dy
    new_y = y + sin_t * dx + cos_t * dy
    new_theta = wrap_angle(np.asarray(theta + dtheta))
    return new_x, new_y, new_theta


# ----------------------------------------------------------------------
# Observation model
# ----------------------------------------------------------------------
def transform_endpoints(
    x: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    end_x: np.ndarray,
    end_y: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Map body-frame beam end points into the world frame.

    ``x, y, theta`` have shape ``(..., N)``; ``end_x, end_y`` shape
    ``(K,)``.  Returns two ``(..., N, K)`` arrays covering every
    (pose, end point) combination.

    The in-place formulation allocates three full-size temporaries
    instead of eight while producing bit-identical results: the only
    reassociation is ``x + cos*ex`` -> ``cos*ex + x``, and IEEE-754
    addition is commutative.
    """
    cos_t = np.cos(theta)[..., None]
    sin_t = np.sin(theta)[..., None]
    # world_x = (x + cos_t * end_x) - sin_t * end_y
    world_x = cos_t * end_x
    world_x += x[..., None]
    scratch = sin_t * end_y
    world_x -= scratch
    # world_y = (y + sin_t * end_x) + cos_t * end_y
    world_y = np.multiply(sin_t, end_x, out=scratch)  # reuses scratch storage
    world_y += y[..., None]
    world_y += cos_t * end_y
    return world_x, world_y


def beam_log_likelihoods(
    x: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    end_x: np.ndarray,
    end_y: np.ndarray,
    field: DistanceField,
    sigma_obs: float,
) -> np.ndarray:
    """Beam-end-point observation log-likelihood, shape ``(..., N)``.

    Transforms every (pose, beam) end point into the map, looks up the
    truncated EDT, and sums ``-d^2 / (2 sigma_obs^2)`` over beams (the
    Gaussian normalization constant cancels during weight normalization).
    """
    world_x, world_y = transform_endpoints(x, y, theta, end_x, end_y)
    squared = field.lookup_squared_world(world_x, world_y)
    log_lik = np.asarray(det_sum(squared))
    np.negative(log_lik, out=log_lik)
    log_lik /= 2.0 * sigma_obs**2
    return log_lik


def posterior_log_weights(
    weights: np.ndarray, log_lik: np.ndarray, replication: float
) -> np.ndarray:
    """Unnormalized posterior weights in float64, shape ``(..., N)``.

    Replicates the per-beam likelihood, subtracts the per-run max
    log-likelihood (so fp16 storage cannot underflow to all-zero), and
    multiplies into the prior weights.
    """
    log_lik = log_lik * replication
    log_lik = log_lik - log_lik.max(axis=-1, keepdims=True)
    return np.asarray(weights, dtype=np.float64) * np.exp(log_lik)


def normalize_weights(weights: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Normalize storage-precision weights in-place along the last axis.

    The sum runs in float64 through the deterministic tree (the paper's
    parallel implementation keeps a full-precision accumulator per core
    for the same reason).  Degenerate rows — all weights zero or
    non-finite — are reset to uniform: the filter lost, but must stay
    operational.  Returns the per-row pre-normalization sums (float64,
    shape ``(...)``).

    All arithmetic happens in-place on one float64 scratch buffer (plus
    the boolean masks): widen once, zero non-finite entries, divide by
    the per-row totals, overwrite degenerate rows with uniform, cast
    back — no full-size ``np.where`` temporaries.
    """
    count = weights.shape[-1]
    scratch = weights.astype(np.float64)  # the single float64 scratch
    finite = np.isfinite(scratch)
    if not finite.all():
        np.logical_not(finite, out=finite)
        scratch[finite] = 0.0
    totals = np.asarray(det_sum(scratch))
    degenerate = ~(totals > 0.0)
    if degenerate.any():
        safe = np.where(degenerate, 1.0, totals)  # (...) scalars, not (N,)
        scratch /= safe[..., None]
        np.copyto(scratch, 1.0 / count, where=degenerate[..., None])
    else:
        scratch /= totals[..., None]
    weights[...] = scratch.astype(dtype)
    return totals[()]


def effective_sample_size(weights: np.ndarray) -> np.ndarray | float:
    """ESS = 1 / sum(w^2) along the last axis; 0.0 for degenerate rows.

    Accepts ``(N,)`` (returns a float, matching
    :meth:`ParticleSet.effective_sample_size`) or ``(R, N)`` (returns an
    ``(R,)`` array with the identical per-row values).
    """
    as64 = weights.astype(np.float64)
    totals = np.asarray(det_sum(as64))[..., None]
    valid = totals > 0.0
    normalized = as64 / np.where(valid, totals, 1.0)
    squared = det_sum_squares(normalized)
    # A valid row's squared sum is >= 1/N > 0, so the guarded divide only
    # papers over rows already forced to ESS 0.
    ess = np.where(
        np.squeeze(valid, axis=-1), 1.0 / np.where(squared > 0.0, squared, 1.0), 0.0
    )
    if ess.ndim == 0:
        return float(ess)
    return ess


# ----------------------------------------------------------------------
# Systematic (wheel) resampling
# ----------------------------------------------------------------------
def draw_wheel_offset(rng: np.random.Generator, count: int) -> float:
    """Draw the single random number of systematic resampling.

    Returns ``u0`` uniform in ``[0, 1/N)``; arrow ``i`` then sits at
    normalized position ``u0 + i / N``.
    """
    return float(rng.uniform(0.0, 1.0 / count))


def _normalized(weights: np.ndarray) -> np.ndarray:
    """Validate one run's weights and normalize them in float64."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ConfigurationError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ConfigurationError("weights must be finite and non-negative")
    total = float(det_sum(weights))
    if total <= 0:
        raise ConfigurationError("weights must not sum to zero")
    return weights / total


def systematic_resample(
    weights: np.ndarray, u0: float, validate: bool = True, normalized: bool = False
) -> np.ndarray:
    """Serial systematic resampling; returns N source indices.

    ``u0`` must lie in ``[0, 1/N)`` (use :func:`draw_wheel_offset`).
    The returned indices are non-decreasing, and each particle ``i`` is
    drawn either ``floor(N w_i)`` or ``ceil(N w_i)`` times — the classic
    low-variance guarantees.

    ``validate=False`` skips the input sanity checks (pure reads, no
    effect on the result); ``normalized=True`` additionally skips the
    renormalizing divide for callers whose weights are normalized by
    construction — every backend resamples through this fast path, and
    the guard ``cumulative[-1] = 1.0`` below absorbs the sub-ulp
    shortfall/overshoot of a stored-precision weight row exactly as it
    absorbs float64 rounding.
    """
    if normalized:
        weights = np.asarray(weights, dtype=np.float64)
    elif validate:
        weights = _normalized(weights)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        weights = weights / det_sum(weights)
    count = weights.size
    if validate and not 0.0 <= u0 < 1.0 / count:
        raise ConfigurationError(f"u0 must be in [0, 1/N), got {u0}")
    positions = u0 + np.arange(count, dtype=np.float64) / count
    cumulative = np.cumsum(weights)
    cumulative[-1] = 1.0  # guard against rounding shortfall
    return np.searchsorted(cumulative, positions, side="right").astype(np.int64)


# ----------------------------------------------------------------------
# Pose estimation
# ----------------------------------------------------------------------
def weighted_mean_pose(
    x: np.ndarray, y: np.ndarray, theta: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, float, float, float]:
    """Weighted mean pose of one run's population.

    Returns ``(normalized_weights, mean_x, mean_y, mean_theta)``; the
    normalized float64 weights are handed back so spread statistics can
    reuse them.  A degenerate population falls back to the unweighted
    mean, exactly like the filter's defensive re-normalization.
    """
    weights = weights.astype(np.float64)
    total = float(det_sum(weights))
    if total <= 0 or not np.isfinite(total):
        weights = np.full(x.size, 1.0 / x.size)
    else:
        weights = weights / total
    mean_x = float(det_dot(weights, x))
    mean_y = float(det_dot(weights, y))
    mean_theta = _circular_mean_det(theta, weights)
    return weights, mean_x, mean_y, mean_theta


def _circular_mean_det(theta: np.ndarray, weights: np.ndarray) -> float:
    """:func:`repro.common.geometry.circular_mean` with det-tree reductions.

    Identical guards and operation order to the scalar helper — only the
    three reductions (weight total, weighted sin/cos dots) run through
    the deterministic tree so stacked backends can replicate the value
    per row.  ``weights`` is already float64 and normalized here, so the
    degenerate-total fallback of the public helper cannot trigger — it
    is kept anyway to preserve the helper's contract for direct callers.
    """
    total = float(det_sum(weights))
    if total <= 0.0 or not math.isfinite(total):
        weights = np.ones_like(theta)
        total = float(theta.size)
    sin_sum = float(det_dot(weights, np.sin(theta)))
    cos_sum = float(det_dot(weights, np.cos(theta)))
    eps = 1e-9 * max(1.0, total)
    if abs(sin_sum) < eps and abs(cos_sum) < eps:
        return 0.0
    return math.atan2(sin_sum / total, cos_sum / total)


def weighted_pose_spread(
    x: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    weights: np.ndarray,
    mean_x: float,
    mean_y: float,
) -> tuple[np.ndarray, float]:
    """Position covariance and circular yaw std around a weighted mean.

    ``weights`` must already be normalized (as returned by
    :func:`weighted_mean_pose`).
    """
    dx = x - mean_x
    dy = y - mean_y
    cov = np.empty((2, 2), dtype=np.float64)
    cov[0, 0] = float(det_dot(weights, dx * dx))
    cov[0, 1] = cov[1, 0] = float(det_dot(weights, dx * dy))
    cov[1, 1] = float(det_dot(weights, dy * dy))

    # Circular spread: R = |weighted mean resultant|, std = sqrt(-2 ln R).
    resultant = complex(
        float(det_dot(weights, np.cos(theta))), float(det_dot(weights, np.sin(theta)))
    )
    r_len = min(abs(resultant), 1.0)
    yaw_std = math.sqrt(max(-2.0 * math.log(max(r_len, 1e-12)), 0.0))
    return cov, yaw_std
