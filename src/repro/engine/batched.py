"""The batched backend: R independent runs stepped as ``(R, N)`` stacks.

The sweep protocol replays the same filter configuration over many
(sequence, seed) pairs.  The reference backend walks them one at a time,
so every numpy kernel is dispatched R times per observation instant and
every sequence is re-replayed (frames materialized, beams re-extracted)
once per seed.  This backend instead keeps all R particle populations in
``(R, N)`` arrays and advances them together:

* **per-run movement gating via boolean masks** — each step only
  touches the rows whose gate fired (runs of different sequences fire
  at different instants);
* **cached replay plans** — the parts of a run that depend only on the
  sequence and the gating/beam configuration (odometry accumulation,
  trigger trace, frame materialization, beam extraction, ground-truth
  poses) are computed once per (sequence, config signature) and shared
  by every seed of every sweep cell that replays that sequence — see
  :mod:`repro.engine.replay`;
* **one vectorized observation pass** — the beam transform, EDT lookup
  and log-likelihood reduction run on ``(R', N, K)`` stacks (chunked to
  bound temporary memory);
* **per-run resampling via row-wise wheel offsets** — each run draws its
  own ``u0`` from its own RNG stream and gathers its own row.

The row-wise step math itself lives in :class:`ParticleStack` — the
backend's :class:`~repro.engine.backend.SessionStack` implementation —
so the offline run loop here and the serve layer's online session
multiplexer execute the *same code*: every kernel invocation follows the
bitwise-reproducibility contract of :mod:`repro.engine.kernels`, and
each run's RNG stream sees exactly the same draws in the same order as
under the reference backend, so per-run traces and metrics are
**identical** to R sequential reference runs — asserted by
``tests/engine/test_backends.py`` (offline) and ``tests/serve/``
(online fleets).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .. import obs
from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D, wrap_angle
from ..common.rng import make_rng
from ..core.config import MclConfig
from ..core.pose_estimate import pose_error
from ..core.snapshot import FilterStateSnapshot
from ..dataset.recorder import RecordedSequence
from ..maps.distance_field import DistanceField
from ..maps.occupancy import OccupancyGrid
from . import kernels
from .backend import (
    COUNTER_GATE_TRIGGERS,
    COUNTER_PLAN_HITS,
    COUNTER_PLAN_MISSES,
    COUNTER_RESAMPLE_SKIPS,
    COUNTER_RESAMPLES,
    COUNTER_STEPS,
    RunSpec,
    RunTrace,
    SPAN_ESTIMATE,
    SPAN_GATHER,
    SPAN_RESAMPLE,
    SPAN_TRANSFORM,
    SPAN_WEIGHT,
    StepWork,
)
from .replay import ReplayPlan, ReplayStep

__all__ = [
    "OBS_CHUNK_ELEMENTS",
    "BatchedBackend",
    "ParticleStack",
    "ReplayPlan",
    "ReplayStep",
]

#: Upper bound on elements of one (R', N, K) observation temporary; row
#: chunks are sized so R' * N * K stays below this.  Tuned so a chunk's
#: float64 intermediates (~0.5 MB each) stay cache-resident — stacking
#: more rows per numpy call saves dispatch overhead only while the
#: working set still fits near the core; beyond that the batched pass
#: runs slower per element than the reference's one-run tiles.
OBS_CHUNK_ELEMENTS = 1 << 16


class ParticleStack:
    """``(R, N)`` particle populations with row-deterministic step ops.

    This is the batched backend's :class:`SessionStack`: the one
    implementation of the stacked motion / observation / resampling /
    estimation math, shared by the offline :class:`_RunBatch` driver and
    the serve layer's online scheduler.  Rows are independent filter
    populations under one shared :class:`MclConfig`; every operation
    that crosses rows is per-row deterministic (elementwise stages on
    the stack, order-sensitive reductions per contiguous row), so a
    row's evolution never depends on which rows it was packed with.
    """

    def __init__(
        self,
        config: MclConfig,
        rows: int = 0,
        obs_chunk_elements: int = OBS_CHUNK_ELEMENTS,
    ) -> None:
        if obs_chunk_elements < 1:
            raise ConfigurationError("obs_chunk_elements must be positive")
        self.config = config
        self.count = config.particle_count
        self.dtype = config.precision.particle_dtype
        self.obs_chunk_elements = int(obs_chunk_elements)

        self.rows = 0
        self.x = np.zeros((0, self.count), dtype=self.dtype)
        self.y = np.zeros((0, self.count), dtype=self.dtype)
        self.theta = np.zeros((0, self.count), dtype=self.dtype)
        self.weights = np.zeros((0, self.count), dtype=self.dtype)
        self.update_count = np.zeros(0, dtype=np.int64)
        self.rngs: list[np.random.Generator | None] = []
        self.estimates: list[Pose2D] = []
        self.estimate_arrays: list[np.ndarray | None] = []
        self.ensure_capacity(rows)

    # ------------------------------------------------------------------
    # Row management
    # ------------------------------------------------------------------
    def ensure_capacity(self, rows: int) -> None:
        """Grow to at least ``rows`` rows (existing rows untouched)."""
        if rows <= self.rows:
            return

        def grow(array: np.ndarray) -> np.ndarray:
            wide = np.zeros((rows, array.shape[1]), dtype=array.dtype)
            wide[: self.rows] = array
            return wide

        self.x = grow(self.x)
        self.y = grow(self.y)
        self.theta = grow(self.theta)
        self.weights = grow(self.weights)
        self.update_count = np.concatenate(
            [self.update_count, np.zeros(rows - self.rows, dtype=np.int64)]
        )
        added = rows - self.rows
        self.rngs.extend([None] * added)
        self.estimates.extend([Pose2D.identity()] * added)
        self.estimate_arrays.extend([None] * added)
        self.rows = rows

    def init_row(self, row: int, grid: OccupancyGrid, spec: RunSpec) -> None:
        """(Re)initialize ``row`` exactly like a fresh reference filter.

        Replicates ``MonteCarloLocalization.__init__`` (plus the
        optional ``reset_at`` tracking init) draw for draw: the
        global-localization init always runs first — the reference
        filter draws it in its constructor — so the RNG stream advances
        identically even under tracking init.
        """
        rng = make_rng(spec.seed, "mcl")
        self.rngs[row] = rng
        n = self.count
        uniform = np.full(n, 1.0 / n)
        x, y = grid.sample_free_points(n, rng)
        theta = rng.uniform(-np.pi, np.pi, size=n)
        self._store(row, x, y, theta, uniform)
        if spec.tracking_init:
            start = spec.sequence.ground_truth_pose(0)
            x = rng.normal(start.x, spec.tracking_sigma_xy, size=n)
            y = rng.normal(start.y, spec.tracking_sigma_xy, size=n)
            theta = rng.normal(start.theta, spec.tracking_sigma_theta, size=n)
            self._store(row, x, y, theta, uniform)
        self.update_count[row] = 0
        self._refresh_estimate(row)

    # ------------------------------------------------------------------
    # State capture (snapshot / restore, serve-layer migration)
    # ------------------------------------------------------------------
    def export_row(self, row: int) -> FilterStateSnapshot:
        """Capture one row's complete dynamic state."""
        rng = self.rngs[row]
        estimate = self.estimate_arrays[row]
        if rng is None or estimate is None:
            raise ConfigurationError(f"stack row {row} was never initialized")
        return FilterStateSnapshot.capture(
            self.x[row],
            self.y[row],
            self.theta[row],
            self.weights[row],
            rng,
            int(self.update_count[row]),
            estimate,
        )

    def import_row(self, row: int, snapshot: FilterStateSnapshot) -> None:
        """Resume ``row`` exactly from a snapshot (verbatim, never cast).

        The estimate is taken from the snapshot rather than recomputed,
        so the restored row reports bit-identical poses from the first
        post-restore frame on.  Snapshots carrying pending odometry (a
        scalar filter captured mid-accumulation) are rejected — a row
        has nowhere to keep that motion, and dropping it would diverge
        silently.
        """
        snapshot.check_compatible(self.count, np.dtype(self.dtype))
        snapshot.check_no_pending()
        self.x[row] = snapshot.x
        self.y[row] = snapshot.y
        self.theta[row] = snapshot.theta
        self.weights[row] = snapshot.weights
        self.rngs[row] = snapshot.make_rng()
        self.update_count[row] = int(snapshot.update_count)
        self.estimates[row] = snapshot.estimate_pose()
        self.estimate_arrays[row] = snapshot.estimate.copy()

    # ------------------------------------------------------------------
    # Row queries
    # ------------------------------------------------------------------
    def estimate(self, row: int) -> Pose2D:
        return self.estimates[row]

    def estimate_array(self, row: int) -> np.ndarray:
        array = self.estimate_arrays[row]
        if array is None:
            raise ConfigurationError(f"stack row {row} was never initialized")
        return array

    def updates(self, row: int) -> int:
        return int(self.update_count[row])

    # ------------------------------------------------------------------
    # One packed filter update
    # ------------------------------------------------------------------
    def step(self, work: Sequence[StepWork]) -> None:
        """Fire one gated update for every row listed across ``work``.

        Packing contract: rows of one work item share that item's replay
        step (motion increment + beams) and distance field; the motion,
        ESS and estimate stages stack across *all* listed rows, the
        observation stage runs per work item.  Per-row results are
        independent of the packing (see class docstring), so callers may
        group rows however throughput dictates.
        """
        triggered_list: list[int] = []
        for item in work:
            triggered_list.extend(item.rows)
        if not triggered_list:
            return
        triggered = np.array(triggered_list, dtype=np.int64)
        # Stage spans + gate counters (no-ops when telemetry is off);
        # timing reads never feed back into the numeric state below.
        obs.counter(COUNTER_STEPS).inc()
        obs.counter(COUNTER_GATE_TRIGGERS).inc(len(triggered_list))
        with obs.span(SPAN_TRANSFORM):
            self._motion_update(triggered, work)
        observed = self._observation_update(work)
        if observed.size:
            with obs.span(SPAN_RESAMPLE):
                self._resample(observed)
        with obs.span(SPAN_ESTIMATE):
            self._refresh_estimates(triggered)
        self.update_count[triggered] += 1

    def _motion_update(
        self, triggered: np.ndarray, work: Sequence[StepWork]
    ) -> None:
        config = self.config
        n = self.count
        rows = len(triggered)
        noise_x = np.empty((rows, n))
        noise_y = np.empty((rows, n))
        noise_theta = np.empty((rows, n))
        inc = np.empty((rows, 3))
        i = 0
        for item in work:
            pending = item.step.pending
            assert pending is not None  # packed steps always fired
            for row in item.rows:
                noise_x[i], noise_y[i], noise_theta[i] = kernels.sample_motion_noise(
                    self.rngs[row], n, config.sigma_odom_xy, config.sigma_odom_theta
                )
                inc[i] = (pending.x, pending.y, pending.theta)
                i += 1

        new_x, new_y, new_theta = kernels.compose_increment(
            self.x[triggered].astype(np.float64),
            self.y[triggered].astype(np.float64),
            self.theta[triggered].astype(np.float64),
            inc[:, 0:1] + noise_x,
            inc[:, 1:2] + noise_y,
            inc[:, 2:3] + noise_theta,
        )
        self._store(triggered, new_x, new_y, new_theta)

    def _observation_update(self, work: Sequence[StepWork]) -> np.ndarray:
        """Re-weight packed rows; returns the rows that saw usable beams."""
        config = self.config
        observed: list[int] = []
        for item in work:
            step = item.step
            if step.beams is None:
                continue
            for chunk in self._row_chunks(item.rows, step.beams.beam_count):
                with obs.span(SPAN_GATHER):
                    log_lik = kernels.beam_log_likelihoods(
                        self.x[chunk].astype(np.float64),
                        self.y[chunk].astype(np.float64),
                        self.theta[chunk].astype(np.float64),
                        step.end_x,
                        step.end_y,
                        item.field,
                        config.sigma_obs,
                    )
                with obs.span(SPAN_WEIGHT):
                    updated = kernels.posterior_log_weights(
                        self.weights[chunk], log_lik, config.beam_replication
                    )
                    stored = updated.astype(self.dtype)
                    kernels.normalize_weights(stored, self.dtype)
                    self.weights[chunk] = stored
            observed.extend(item.rows)
        return np.array(observed, dtype=np.int64)

    def _row_chunks(self, rows: list[int], beam_count: int):
        """Split rows so one (R', N, K) float64 temporary stays bounded."""
        per_row = self.count * max(beam_count, 1)
        chunk_rows = max(1, self.obs_chunk_elements // per_row)
        for start in range(0, len(rows), chunk_rows):
            yield np.array(rows[start : start + chunk_rows], dtype=np.int64)

    def _resample(self, observed: np.ndarray) -> None:
        threshold = self.config.resample_ess_fraction * self.count
        ess = np.atleast_1d(
            np.asarray(kernels.effective_sample_size(self.weights[observed]))
        )
        uniform = np.asarray(1.0 / self.count, dtype=self.dtype)
        resampled = 0
        for i, run in enumerate(observed):
            run = int(run)
            if ess[i] > threshold:
                continue
            resampled += 1
            u0 = kernels.draw_wheel_offset(self.rngs[run], self.count)
            indices = kernels.systematic_resample(
                self.weights[run].astype(np.float64),
                u0,
                validate=False,
                normalized=True,
            )
            self.x[run] = self.x[run][indices]
            self.y[run] = self.y[run][indices]
            self.theta[run] = self.theta[run][indices]
            self.weights[run] = uniform
        obs.counter(COUNTER_RESAMPLES).inc(resampled)
        obs.counter(COUNTER_RESAMPLE_SKIPS).inc(len(observed) - resampled)

    # ------------------------------------------------------------------
    # State storage and pose estimates
    # ------------------------------------------------------------------
    def _store(
        self,
        rows,
        x: np.ndarray,
        y: np.ndarray,
        theta: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Write float64 state back at storage precision (= ``set_state``)."""
        self.x[rows] = np.asarray(x).astype(self.dtype)
        self.y[rows] = np.asarray(y).astype(self.dtype)
        self.theta[rows] = wrap_angle(np.asarray(theta, dtype=np.float64)).astype(
            self.dtype
        )
        if weights is not None:
            self.weights[rows] = np.asarray(weights).astype(self.dtype)

    def _refresh_estimates(self, triggered: np.ndarray) -> None:
        """Recompute the weighted-mean poses of all triggered rows.

        The elementwise stages (float64 casts, weight normalization,
        sin/cos of yaw) run once on the ``(R', N)`` stack; the
        order-sensitive reductions (the weighted dots) stay per-row on
        contiguous views, so each row's result is bitwise identical to
        :func:`repro.engine.kernels.weighted_mean_pose` on that run alone.
        """
        x64 = self.x[triggered].astype(np.float64)
        y64 = self.y[triggered].astype(np.float64)
        theta64 = self.theta[triggered].astype(np.float64)
        w64 = self.weights[triggered].astype(np.float64)
        totals = np.asarray(kernels.det_sum(w64))
        degenerate = ~((totals > 0) & np.isfinite(totals))
        if degenerate.any():  # rare: fall back to the scalar kernel
            for run in triggered:
                self._refresh_estimate(int(run))
            return
        w64 /= totals[:, None]
        sin_t = np.sin(theta64)
        cos_t = np.cos(theta64)
        sums = np.asarray(kernels.det_sum(w64))
        for i, run in enumerate(triggered):
            weights = w64[i]
            mean_x = float(kernels.det_dot(weights, x64[i]))
            mean_y = float(kernels.det_dot(weights, y64[i]))
            mean_theta = self._circular_mean_row(
                weights, sin_t[i], cos_t[i], float(sums[i])
            )
            estimate = Pose2D(mean_x, mean_y, mean_theta)
            self.estimates[int(run)] = estimate
            self.estimate_arrays[int(run)] = estimate.as_array()

    def _refresh_estimate(self, row: int) -> None:
        """Recompute one row's weighted-mean pose from its row views."""
        _, mean_x, mean_y, mean_theta = kernels.weighted_mean_pose(
            self.x[row].astype(np.float64),
            self.y[row].astype(np.float64),
            self.theta[row].astype(np.float64),
            self.weights[row],
        )
        estimate = Pose2D(mean_x, mean_y, mean_theta)
        self.estimates[row] = estimate
        self.estimate_arrays[row] = estimate.as_array()

    @staticmethod
    def _circular_mean_row(
        weights: np.ndarray, sin_t: np.ndarray, cos_t: np.ndarray, total: float
    ) -> float:
        """One row of :func:`repro.engine.kernels._circular_mean_det`.

        ``sin_t``/``cos_t`` are the precomputed elementwise transforms;
        the det-tree dots and guards replicate the scalar helper
        exactly.  The degenerate branches (non-positive or non-finite
        totals) are handled by the caller's fallback, so ``total > 0``
        holds here.
        """
        sin_sum = float(kernels.det_dot(weights, sin_t))
        cos_sum = float(kernels.det_dot(weights, cos_t))
        eps = 1e-9 * max(1.0, total)
        if abs(sin_sum) < eps and abs(cos_sum) < eps:
            return 0.0
        return math.atan2(sin_sum / total, cos_sum / total)


class BatchedBackend:
    """Vectorized executor advancing all runs of a batch simultaneously."""

    name = "batched"

    def __init__(self, obs_chunk_elements: int = OBS_CHUNK_ELEMENTS) -> None:
        if obs_chunk_elements < 1:
            raise ConfigurationError("obs_chunk_elements must be positive")
        self.obs_chunk_elements = int(obs_chunk_elements)
        self._plans: dict[tuple, ReplayPlan] = {}

    def execute(
        self,
        grid: OccupancyGrid,
        specs: Sequence[RunSpec],
        config: MclConfig,
        field: DistanceField | None = None,
    ) -> list[RunTrace]:
        if not specs:
            return []
        if field is None:
            field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        if abs(field.resolution - grid.resolution) > 1e-12:
            raise ConfigurationError(
                "distance field resolution does not match the occupancy grid"
            )
        # The stack comes from open_stack so subclasses swapping the stack
        # implementation (the fast backend) inherit the whole run loop.
        stack = self.open_stack(config, len(specs))
        batch = _RunBatch(grid, list(specs), config, field, stack, self.plan)
        return batch.run()

    def open_stack(self, config: MclConfig, rows: int = 0) -> ParticleStack:
        """Open the step-level entry point: a stacked session container."""
        return ParticleStack(config, rows, self.obs_chunk_elements)

    def plan(self, sequence: RecordedSequence, config: MclConfig) -> ReplayPlan:
        """Build (or reuse) the replay plan of one sequence.

        Keyed by object identity plus the gating/beam signature; the plan
        holds a strong reference to its sequence, which keeps ``id``
        stable for the cache's lifetime.
        """
        key = (id(sequence), ReplayPlan.signature(config))
        plan = self._plans.get(key)
        if plan is None or plan.sequence is not sequence:
            obs.counter(COUNTER_PLAN_MISSES).inc()
            plan = ReplayPlan(sequence, config)
            self._plans[key] = plan
        else:
            obs.counter(COUNTER_PLAN_HITS).inc()
        return plan


class _SequenceGroup:
    """Runs of one batch that replay the same recorded sequence."""

    def __init__(self, plan: ReplayPlan, run_indices: list[int]) -> None:
        self.plan = plan
        self.runs = run_indices
        self.length = plan.length


class _RunBatch:
    """Offline driver: a fixed run set swept over its shared horizon.

    Owns the batch layout (grouping runs by sequence, per-instant gate
    masks, trace recording); all particle math is delegated to one
    injected :class:`ParticleStack` (or subclass) holding every run as a
    row.
    """

    def __init__(
        self,
        grid: OccupancyGrid,
        specs: list[RunSpec],
        config: MclConfig,
        field: DistanceField,
        stack: ParticleStack,
        plan_for,
    ) -> None:
        self.specs = specs
        self.field = field
        self.stack = stack
        stack.ensure_capacity(len(specs))

        # Group runs by the sequence they replay; the replay plan (gating
        # trace, beams, ground truth) is shared within a group and — via
        # the backend's cache — across sweep cells.
        groups: dict[int, _SequenceGroup] = {}
        for run, spec in enumerate(specs):
            key = id(spec.sequence)
            if key not in groups:
                groups[key] = _SequenceGroup(plan_for(spec.sequence, config), [])
            groups[key].runs.append(run)
        self.groups = list(groups.values())

        for run, spec in enumerate(specs):
            self.stack.init_row(run, grid, spec)

    def run(self) -> list[RunTrace]:
        runs = len(self.specs)
        timestamps: list[list[float]] = [[] for _ in range(runs)]
        position_errors: list[list[float]] = [[] for _ in range(runs)]
        yaw_errors: list[list[float]] = [[] for _ in range(runs)]
        estimate_rows: list[list[np.ndarray]] = [[] for _ in range(runs)]

        horizon = max(group.length for group in self.groups)
        for t in range(horizon):
            work = [
                StepWork(rows=group.runs, step=group.plan.steps[t], field=self.field)
                for group in self.groups
                if t < group.length and group.plan.steps[t].fires
            ]
            self.stack.step(work)
            self._record(
                t, timestamps, position_errors, yaw_errors, estimate_rows
            )

        traces = []
        for run in range(runs):
            traces.append(
                RunTrace(
                    timestamps=np.array(timestamps[run]),
                    position_errors=np.array(position_errors[run]),
                    yaw_errors=np.array(yaw_errors[run]),
                    estimate_trace=np.stack(estimate_rows[run]),
                    update_count=self.stack.updates(run),
                )
            )
        return traces

    def _record(
        self,
        t: int,
        timestamps: list[list[float]],
        position_errors: list[list[float]],
        yaw_errors: list[list[float]],
        estimate_rows: list[list[np.ndarray]],
    ) -> None:
        for group in self.groups:
            if t >= group.length:
                continue
            plan = group.plan
            timestamp = plan.timestamps[t]
            ground_truth = plan.ground_truth[t]
            for run in group.runs:
                err_pos, err_yaw = pose_error(self.stack.estimate(run), ground_truth)
                timestamps[run].append(timestamp)
                position_errors[run].append(err_pos)
                yaw_errors[run].append(err_yaw)
                estimate_rows[run].append(self.stack.estimate_array(run))
