"""The batched backend: R independent runs stepped as ``(R, N)`` stacks.

The sweep protocol replays the same filter configuration over many
(sequence, seed) pairs.  The reference backend walks them one at a time,
so every numpy kernel is dispatched R times per observation instant and
every sequence is re-replayed (frames materialized, beams re-extracted)
once per seed.  This backend instead keeps all R particle populations in
``(R, N)`` arrays and advances them together:

* **per-run movement gating via boolean masks** — each step only
  touches the rows whose gate fired (runs of different sequences fire
  at different instants);
* **cached replay plans** — the parts of a run that depend only on the
  sequence and the gating/beam configuration (odometry accumulation,
  trigger trace, frame materialization, beam extraction, ground-truth
  poses) are computed once per (sequence, config signature) and shared
  by every seed of every sweep cell that replays that sequence;
* **one vectorized observation pass** — the beam transform, EDT lookup
  and log-likelihood reduction run on ``(R', N, K)`` stacks (chunked to
  bound temporary memory);
* **per-run resampling via row-wise wheel offsets** — each run draws its
  own ``u0`` from its own RNG stream and gathers its own row.

Every kernel invocation follows the bitwise-reproducibility contract of
:mod:`repro.engine.kernels`, and each run's RNG stream sees exactly the
same draws in the same order as under the reference backend, so per-run
traces and metrics are **identical** to R sequential reference runs —
asserted by ``tests/engine/test_backends.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D, wrap_angle
from ..common.rng import make_rng
from ..core.config import MclConfig
from ..core.observation import BeamBundle, extract_beams
from ..core.pose_estimate import pose_error
from ..dataset.recorder import RecordedSequence
from ..maps.distance_field import DistanceField
from ..maps.occupancy import OccupancyGrid
from . import kernels
from .backend import RunSpec, RunTrace

#: Upper bound on elements of one (R', N, K) observation temporary; row
#: chunks are sized so R' * N * K stays below this.  Tuned so a chunk's
#: float64 intermediates (~0.5 MB each) stay cache-resident — stacking
#: more rows per numpy call saves dispatch overhead only while the
#: working set still fits near the core; beyond that the batched pass
#: runs slower per element than the reference's one-run tiles.
OBS_CHUNK_ELEMENTS = 1 << 16


@dataclass
class ReplayStep:
    """What one observation instant of a sequence holds for the filter.

    ``fires`` is the movement-gate decision (identical for every run of
    the sequence — the gate reads odometry only); when it fires,
    ``pending`` is the accumulated body-frame motion the update consumes
    and ``beams``/``end_x``/``end_y`` the preprocessed observation.
    """

    fires: bool
    pending: Pose2D | None = None
    beams: BeamBundle | None = None
    end_x: np.ndarray | None = None
    end_y: np.ndarray | None = None


class ReplayPlan:
    """Everything about replaying one sequence that no seed changes.

    Replicates the reference loop's odometry accumulation and movement
    gating operation-for-operation, and hoists frame materialization,
    beam extraction and ground-truth pose construction out of the
    per-run (and per-cell) hot path.
    """

    def __init__(self, sequence: RecordedSequence, config: MclConfig) -> None:
        self.sequence = sequence  # strong ref keeps the cache key stable
        self.length = len(sequence)
        self.timestamps = [float(t) for t in sequence.timestamps]
        self.ground_truth = [
            sequence.ground_truth_pose(t) for t in range(self.length)
        ]
        self.steps: list[ReplayStep] = []

        pending = Pose2D.identity()
        previous = sequence.odometry_pose(0)
        for t in range(self.length):
            if t > 0:
                odometry = sequence.odometry_pose(t)
                pending = pending.compose(previous.between(odometry))
                previous = odometry
            if not config.movement_trigger(pending.x, pending.y, pending.theta):
                self.steps.append(ReplayStep(fires=False))
                continue
            timestamp = self.timestamps[t]
            frames = [track.frame(t, timestamp) for track in sequence.tracks]
            beams = extract_beams(frames, config)
            step = ReplayStep(fires=True, pending=pending)
            if beams.beam_count:
                step.beams = beams
                step.end_x, step.end_y = beams.endpoints_body()
            self.steps.append(step)
            pending = Pose2D.identity()

    @staticmethod
    def signature(config: MclConfig) -> tuple:
        """The config facets a plan depends on (gating + beam filtering)."""
        return (
            config.d_xy,
            config.d_theta,
            config.use_rear_sensor,
            config.beam_rows,
            config.max_beam_range_m,
        )


class BatchedBackend:
    """Vectorized executor advancing all runs of a batch simultaneously."""

    name = "batched"

    def __init__(self, obs_chunk_elements: int = OBS_CHUNK_ELEMENTS) -> None:
        if obs_chunk_elements < 1:
            raise ConfigurationError("obs_chunk_elements must be positive")
        self.obs_chunk_elements = int(obs_chunk_elements)
        self._plans: dict[tuple, ReplayPlan] = {}

    def execute(
        self,
        grid: OccupancyGrid,
        specs: Sequence[RunSpec],
        config: MclConfig,
        field: DistanceField | None = None,
    ) -> list[RunTrace]:
        if not specs:
            return []
        if field is None:
            field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        if abs(field.resolution - grid.resolution) > 1e-12:
            raise ConfigurationError(
                "distance field resolution does not match the occupancy grid"
            )
        batch = _RunBatch(
            grid, list(specs), config, field, self.obs_chunk_elements, self._plan
        )
        return batch.run()

    def _plan(self, sequence: RecordedSequence, config: MclConfig) -> ReplayPlan:
        """Build (or reuse) the replay plan of one sequence.

        Keyed by object identity plus the gating/beam signature; the plan
        holds a strong reference to its sequence, which keeps ``id``
        stable for the cache's lifetime.
        """
        key = (id(sequence), ReplayPlan.signature(config))
        plan = self._plans.get(key)
        if plan is None or plan.sequence is not sequence:
            plan = ReplayPlan(sequence, config)
            self._plans[key] = plan
        return plan


class _SequenceGroup:
    """Runs of one batch that replay the same recorded sequence."""

    def __init__(self, plan: ReplayPlan, run_indices: list[int]) -> None:
        self.plan = plan
        self.runs = run_indices
        self.length = plan.length


class _RunBatch:
    """Mutable state of one batched execution: ``(R, N)`` populations."""

    def __init__(
        self,
        grid: OccupancyGrid,
        specs: list[RunSpec],
        config: MclConfig,
        field: DistanceField,
        obs_chunk_elements: int,
        plan_for,
    ) -> None:
        self.grid = grid
        self.specs = specs
        self.config = config
        self.field = field
        self.obs_chunk_elements = obs_chunk_elements
        self.count = config.particle_count
        self.dtype = config.precision.particle_dtype

        runs = len(specs)
        self.rngs = [make_rng(spec.seed, "mcl") for spec in specs]
        self.x = np.zeros((runs, self.count), dtype=self.dtype)
        self.y = np.zeros((runs, self.count), dtype=self.dtype)
        self.theta = np.zeros((runs, self.count), dtype=self.dtype)
        self.weights = np.zeros((runs, self.count), dtype=self.dtype)
        self.update_count = np.zeros(runs, dtype=np.int64)
        self.estimates: list[Pose2D] = [Pose2D.identity()] * runs
        self.estimate_arrays: list[np.ndarray] = [None] * runs  # type: ignore[list-item]

        # Group runs by the sequence they replay; the replay plan (gating
        # trace, beams, ground truth) is shared within a group and — via
        # the backend's cache — across sweep cells.
        groups: dict[int, _SequenceGroup] = {}
        for run, spec in enumerate(specs):
            key = id(spec.sequence)
            if key not in groups:
                groups[key] = _SequenceGroup(plan_for(spec.sequence, config), [])
            groups[key].runs.append(run)
        self.groups = list(groups.values())
        self.run_group: list[_SequenceGroup] = [None] * runs  # type: ignore[list-item]
        for group in self.groups:
            for run in group.runs:
                self.run_group[run] = group

        self._init_populations()

    # ------------------------------------------------------------------
    # Initialization (replicates ParticleSet init + MCL reset semantics)
    # ------------------------------------------------------------------
    def _store(
        self,
        rows,
        x: np.ndarray,
        y: np.ndarray,
        theta: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Write float64 state back at storage precision (= ``set_state``)."""
        self.x[rows] = np.asarray(x).astype(self.dtype)
        self.y[rows] = np.asarray(y).astype(self.dtype)
        self.theta[rows] = wrap_angle(np.asarray(theta, dtype=np.float64)).astype(
            self.dtype
        )
        if weights is not None:
            self.weights[rows] = np.asarray(weights).astype(self.dtype)

    def _init_populations(self) -> None:
        n = self.count
        uniform = np.full(n, 1.0 / n)
        for run, spec in enumerate(self.specs):
            rng = self.rngs[run]
            # Global-localization init always runs first (the reference
            # filter draws it in its constructor), so the RNG stream
            # advances identically even under tracking init.
            x, y = self.grid.sample_free_points(n, rng)
            theta = rng.uniform(-np.pi, np.pi, size=n)
            self._store(run, x, y, theta, uniform)
            if spec.tracking_init:
                start = spec.sequence.ground_truth_pose(0)
                x = rng.normal(start.x, spec.tracking_sigma_xy, size=n)
                y = rng.normal(start.y, spec.tracking_sigma_xy, size=n)
                theta = rng.normal(start.theta, spec.tracking_sigma_theta, size=n)
                self._store(run, x, y, theta, uniform)
        self._refresh_estimates(np.arange(len(self.specs)))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> list[RunTrace]:
        runs = len(self.specs)
        timestamps: list[list[float]] = [[] for _ in range(runs)]
        position_errors: list[list[float]] = [[] for _ in range(runs)]
        yaw_errors: list[list[float]] = [[] for _ in range(runs)]
        estimate_rows: list[list[np.ndarray]] = [[] for _ in range(runs)]

        horizon = max(group.length for group in self.groups)
        for t in range(horizon):
            triggered = self._gate_mask(t)
            if triggered.size:
                self._step_triggered(t, triggered)
            self._record(
                t, timestamps, position_errors, yaw_errors, estimate_rows
            )

        traces = []
        for run in range(runs):
            traces.append(
                RunTrace(
                    timestamps=np.array(timestamps[run]),
                    position_errors=np.array(position_errors[run]),
                    yaw_errors=np.array(yaw_errors[run]),
                    estimate_trace=np.stack(estimate_rows[run]),
                    update_count=int(self.update_count[run]),
                )
            )
        return traces

    def _gate_mask(self, t: int) -> np.ndarray:
        """Rows whose movement gate fires at instant ``t``.

        The returned array is the step's per-run boolean gate mask in
        index form: the rows of the ``(R, N)`` stacks this update will
        touch.  Rows whose sequence already ended never fire.
        """
        triggered: list[int] = []
        for group in self.groups:
            if t < group.length and group.plan.steps[t].fires:
                triggered.extend(group.runs)
        return np.array(triggered, dtype=np.int64)

    # ------------------------------------------------------------------
    # One batched filter update over the triggered rows
    # ------------------------------------------------------------------
    def _step_triggered(self, t: int, triggered: np.ndarray) -> None:
        self._motion_update(t, triggered)
        observed = self._observation_update(t, triggered)
        if observed.size:
            self._resample(observed)
        self._refresh_estimates(triggered)
        self.update_count[triggered] += 1

    def _motion_update(self, t: int, triggered: np.ndarray) -> None:
        config = self.config
        n = self.count
        rows = len(triggered)
        noise_x = np.empty((rows, n))
        noise_y = np.empty((rows, n))
        noise_theta = np.empty((rows, n))
        inc = np.empty((rows, 3))
        for i, run in enumerate(triggered):
            run = int(run)
            noise_x[i], noise_y[i], noise_theta[i] = kernels.sample_motion_noise(
                self.rngs[run], n, config.sigma_odom_xy, config.sigma_odom_theta
            )
            pending = self.run_group[run].plan.steps[t].pending
            inc[i] = (pending.x, pending.y, pending.theta)

        new_x, new_y, new_theta = kernels.compose_increment(
            self.x[triggered].astype(np.float64),
            self.y[triggered].astype(np.float64),
            self.theta[triggered].astype(np.float64),
            inc[:, 0:1] + noise_x,
            inc[:, 1:2] + noise_y,
            inc[:, 2:3] + noise_theta,
        )
        self._store(triggered, new_x, new_y, new_theta)

    def _observation_update(self, t: int, triggered: np.ndarray) -> np.ndarray:
        """Re-weight triggered rows; returns the rows that saw usable beams."""
        config = self.config
        observed: list[int] = []
        for group in self.groups:
            if t >= group.length:
                continue
            step = group.plan.steps[t]
            if not step.fires or step.beams is None:
                continue
            rows = group.runs
            for chunk in self._row_chunks(rows, step.beams.beam_count):
                log_lik = kernels.beam_log_likelihoods(
                    self.x[chunk].astype(np.float64),
                    self.y[chunk].astype(np.float64),
                    self.theta[chunk].astype(np.float64),
                    step.end_x,
                    step.end_y,
                    self.field,
                    config.sigma_obs,
                )
                updated = kernels.posterior_log_weights(
                    self.weights[chunk], log_lik, config.beam_replication
                )
                stored = updated.astype(self.dtype)
                kernels.normalize_weights(stored, self.dtype)
                self.weights[chunk] = stored
            observed.extend(rows)
        return np.array(observed, dtype=np.int64)

    def _row_chunks(self, rows: list[int], beam_count: int):
        """Split rows so one (R', N, K) float64 temporary stays bounded."""
        per_row = self.count * max(beam_count, 1)
        chunk_rows = max(1, self.obs_chunk_elements // per_row)
        for start in range(0, len(rows), chunk_rows):
            yield np.array(rows[start : start + chunk_rows], dtype=np.int64)

    def _resample(self, observed: np.ndarray) -> None:
        threshold = self.config.resample_ess_fraction * self.count
        ess = np.atleast_1d(
            np.asarray(kernels.effective_sample_size(self.weights[observed]))
        )
        uniform = np.asarray(1.0 / self.count, dtype=self.dtype)
        for i, run in enumerate(observed):
            run = int(run)
            if ess[i] > threshold:
                continue
            u0 = kernels.draw_wheel_offset(self.rngs[run], self.count)
            indices = kernels.systematic_resample(
                self.weights[run].astype(np.float64), u0, validate=False
            )
            self.x[run] = self.x[run][indices]
            self.y[run] = self.y[run][indices]
            self.theta[run] = self.theta[run][indices]
            self.weights[run] = uniform

    # ------------------------------------------------------------------
    # Pose estimates
    # ------------------------------------------------------------------
    def _refresh_estimates(self, triggered: np.ndarray) -> None:
        """Recompute the weighted-mean poses of all triggered rows.

        The elementwise stages (float64 casts, weight normalization,
        sin/cos of yaw) run once on the ``(R', N)`` stack; the
        order-sensitive reductions (the weighted dots) stay per-row on
        contiguous views, so each row's result is bitwise identical to
        :func:`repro.engine.kernels.weighted_mean_pose` on that run alone.
        """
        x64 = self.x[triggered].astype(np.float64)
        y64 = self.y[triggered].astype(np.float64)
        theta64 = self.theta[triggered].astype(np.float64)
        w64 = self.weights[triggered].astype(np.float64)
        totals = w64.sum(axis=-1)
        degenerate = ~((totals > 0) & np.isfinite(totals))
        if degenerate.any():  # rare: fall back to the scalar kernel
            for run in triggered:
                self._refresh_estimate(int(run))
            return
        w64 /= totals[:, None]
        sin_t = np.sin(theta64)
        cos_t = np.cos(theta64)
        sums = w64.sum(axis=-1)
        for i, run in enumerate(triggered):
            weights = w64[i]
            mean_x = float(np.dot(weights, x64[i]))
            mean_y = float(np.dot(weights, y64[i]))
            mean_theta = self._circular_mean_row(
                weights, sin_t[i], cos_t[i], float(sums[i])
            )
            estimate = Pose2D(mean_x, mean_y, mean_theta)
            self.estimates[int(run)] = estimate
            self.estimate_arrays[int(run)] = estimate.as_array()

    def _refresh_estimate(self, run: int) -> None:
        """Recompute one run's weighted-mean pose from its row views."""
        _, mean_x, mean_y, mean_theta = kernels.weighted_mean_pose(
            self.x[run].astype(np.float64),
            self.y[run].astype(np.float64),
            self.theta[run].astype(np.float64),
            self.weights[run],
        )
        estimate = Pose2D(mean_x, mean_y, mean_theta)
        self.estimates[run] = estimate
        self.estimate_arrays[run] = estimate.as_array()

    @staticmethod
    def _circular_mean_row(
        weights: np.ndarray, sin_t: np.ndarray, cos_t: np.ndarray, total: float
    ) -> float:
        """One row of :func:`repro.common.geometry.circular_mean`.

        ``sin_t``/``cos_t`` are the precomputed elementwise transforms;
        the dots and guards replicate the scalar helper exactly.  The
        degenerate branches (non-positive or non-finite totals) are
        handled by the caller's fallback, so ``total > 0`` holds here.
        """
        sin_sum = float(np.dot(weights, sin_t))
        cos_sum = float(np.dot(weights, cos_t))
        eps = 1e-9 * max(1.0, total)
        if abs(sin_sum) < eps and abs(cos_sum) < eps:
            return 0.0
        return math.atan2(sin_sum / total, cos_sum / total)

    # ------------------------------------------------------------------
    # Trace recording
    # ------------------------------------------------------------------
    def _record(
        self,
        t: int,
        timestamps: list[list[float]],
        position_errors: list[list[float]],
        yaw_errors: list[list[float]],
        estimate_rows: list[list[np.ndarray]],
    ) -> None:
        for group in self.groups:
            if t >= group.length:
                continue
            plan = group.plan
            timestamp = plan.timestamps[t]
            ground_truth = plan.ground_truth[t]
            for run in group.runs:
                err_pos, err_yaw = pose_error(self.estimates[run], ground_truth)
                timestamps[run].append(timestamp)
                position_errors[run].append(err_pos)
                yaw_errors[run].append(err_yaw)
                estimate_rows[run].append(self.estimate_arrays[run])
