"""The ``fast`` backend: fused per-row kernels behind the bitwise contract.

This is the second-generation throughput backend the deterministic
reduction spec (:mod:`repro.engine.reductions`) exists to enable.  The
batched backend plateaus near the reference at large N because both
spend their time in the same wide numpy passes — transform, EDT gather,
log-likelihood — materializing ``(R, N, K)`` float64 temporaries.  The
fast backend replaces exactly those passes with one fused loop per
particle (transform -> gather -> chunk-of-8 tree reduction, no
``(R, N, K)`` temporaries at all), plus fused resampling-wheel and
estimate-reduction kernels, while keeping **bit-for-bit** the results
of the reference scalar loop — it is asserted in the same equivalence
stacks as reference/batched, and the golden traces pin it.

How it stays bitwise
--------------------
* Transcendentals (``sin``/``cos``/``exp``) are always evaluated by
  numpy on contiguous float64 arrays and passed into the fused kernels:
  numpy's SIMD implementations are not guaranteed to match libm (or any
  JIT's lowering) in the last ulp.  Only IEEE-exact arithmetic — add,
  multiply, divide, floor, casts, compares, gathers, the wrap's
  ``fmod`` — crosses into compiled code.
* Every reduction follows the deterministic tree spec; scans (the
  wheel) replicate the sequential order of
  :func:`repro.engine.kernels.systematic_resample`.
* All stateful bookkeeping (RNG draw order, storage-precision casts,
  the double yaw wrap of compose + store) is inherited unchanged from
  :class:`~repro.engine.batched.ParticleStack`.

Implementation tiers
--------------------
The fused kernels come from the first available *provider*:

``numba``  :mod:`repro.engine.fast_numba` (optional dependency), or
``c``      :mod:`repro.engine.fast_c` — the same kernels compiled from
           C with the system toolchain via cffi (this tier is the
           host-side analogue of the paper's GAP9 C port), or
``numpy``  a pure-numpy fused-per-row fallback in this module — no
           speedup, but it keeps the backend importable and testable
           everywhere.

``REPRO_FAST_IMPL`` (``auto``/``numba``/``c``/``numpy``) pins a tier.
``auto`` tries numba then C and raises a clear
:class:`~repro.common.errors.ConfigurationError` when neither is
usable — the numpy tier must be requested explicitly so a missing
dependency can never silently demote a performance benchmark.

The float64 shadow state
------------------------
The stack keeps, next to the storage-precision arrays, float64 shadows
``x64/y64/theta64/w64`` with the invariant ``shadow ==
stored.astype(float64)`` after every write.  The batched backend pays a
widening cast at the top of every stage; the shadows pay one widening
per *write* instead and hand the fused kernels (and the numpy stages
reused from the parent class) ready-made float64 inputs — same values,
fewer passes.  Two trig shadows ride along: ``cos64/sin64 ==
np.cos/sin(theta64)``, re-evaluated once after each yaw write and
*gathered* (exact) through resampling, so the three stages that need
yaw trig per step (motion compose, beam transform, estimate) share one
evaluation.
"""

from __future__ import annotations

import math
import os
from typing import Sequence

import numpy as np

from .. import obs
from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D
from ..core.config import MclConfig
from ..core.snapshot import FilterStateSnapshot
from . import kernels
from .batched import OBS_CHUNK_ELEMENTS, BatchedBackend, ParticleStack
from .backend import (
    COUNTER_RESAMPLE_SKIPS,
    COUNTER_RESAMPLES,
    SPAN_GATHER,
    SPAN_WEIGHT,
    StepWork,
)
from .reductions import det_sum

__all__ = ["FastBackend", "FastStack", "NumpyProvider", "resolve_provider"]

#: Recognized values of the ``REPRO_FAST_IMPL`` environment override.
IMPL_CHOICES = ("auto", "numba", "c", "numpy")


class NumpyProvider:
    """Pure-numpy provider: fused per row-batch, bitwise to the spec.

    The arithmetic replicates the batched backend's stacked passes
    (which are elementwise + det-tree, hence shape-independent); it
    exists so the fast backend's orchestration is testable without
    numba or a C toolchain, not for speed.
    """

    name = "numpy"
    #: No compiled fused float32 row paths — FastStack keeps the generic
    #: (batched-style) stages under this provider.
    fused_f32 = False

    def loglik_sums(self, x, y, cos_t, sin_t, end_x, end_y, field):
        # kernels.transform_endpoints with the trig factored out (the
        # caller computed cos/sin once for all fused stages): identical
        # elementwise operations and order.
        cos_k = cos_t[..., None]
        sin_k = sin_t[..., None]
        world_x = cos_k * end_x
        world_x += x[..., None]
        scratch = sin_k * end_y
        world_x -= scratch
        world_y = np.multiply(sin_k, end_x, out=scratch)
        world_y += y[..., None]
        world_y += cos_k * end_y
        squared = field.lookup_squared_world(world_x, world_y)
        return np.asarray(det_sum(squared))

    def estimate_row(self, x, y, sin_t, cos_t, w, total, scratch_a, scratch_b):
        wn = w / total
        wn_total = float(det_sum(wn))
        mean_x = float(kernels.det_dot(wn, x))
        mean_y = float(kernels.det_dot(wn, y))
        sin_sum = float(kernels.det_dot(wn, sin_t))
        cos_sum = float(kernels.det_dot(wn, cos_t))
        return wn_total, mean_x, mean_y, sin_sum, cos_sum

    def resample_indices(self, w, u0, scratch):
        return kernels.systematic_resample(w, u0, validate=False, normalized=True)

    def det_sum_row(self, a, scratch):
        return float(det_sum(a))

    def ess_rows(self, w, scratch):
        return np.atleast_1d(np.asarray(kernels.effective_sample_size(w)))


def _build_provider(impl: str):
    if impl == "numpy":
        return NumpyProvider()
    if impl == "numba":
        from .fast_numba import NumbaProvider

        return NumbaProvider()
    if impl == "c":
        from .fast_c import CProvider

        return CProvider()
    raise ConfigurationError(
        f"unknown REPRO_FAST_IMPL {impl!r}; expected one of: "
        + ", ".join(IMPL_CHOICES)
    )


def resolve_provider(impl: str | None = None):
    """Resolve the fused-kernel provider for the fast backend.

    ``impl=None`` reads ``REPRO_FAST_IMPL`` (default ``auto``).  Auto
    tries ``numba`` then ``c`` and raises ``ConfigurationError`` naming
    both failures; the numpy fallback is only used when asked for.
    """
    choice = impl or os.environ.get("REPRO_FAST_IMPL", "auto") or "auto"
    if choice != "auto":
        if choice not in IMPL_CHOICES:
            raise ConfigurationError(
                f"unknown REPRO_FAST_IMPL {choice!r}; expected one of: "
                + ", ".join(IMPL_CHOICES)
            )
        try:
            return _build_provider(choice)
        except ConfigurationError:
            raise
        except Exception as exc:
            raise ConfigurationError(
                f"fast backend implementation {choice!r} is unavailable: {exc}"
            ) from exc
    failures = []
    for candidate in ("numba", "c"):
        try:
            return _build_provider(candidate)
        except Exception as exc:  # noqa: BLE001 - collected into the error
            failures.append(f"{candidate}: {exc}")
    raise ConfigurationError(
        "the fast backend needs numba or a C toolchain (cffi + cc); neither "
        "worked [" + "; ".join(failures) + "]. Install numba, or set "
        "REPRO_FAST_IMPL=numpy to run the (slow) pure-numpy fallback."
    )


class FastStack(ParticleStack):
    """:class:`ParticleStack` with fused kernels and float64 shadows.

    Inherits all row management, RNG bookkeeping and storage-precision
    semantics; overrides the four numeric stages of :meth:`step` to read
    the float64 shadow state and dispatch the fused provider kernels.
    """

    def __init__(
        self,
        config: MclConfig,
        rows: int = 0,
        obs_chunk_elements: int = OBS_CHUNK_ELEMENTS,
        provider=None,
    ) -> None:
        self._provider = provider if provider is not None else resolve_provider()
        n = config.particle_count
        self.x64 = np.zeros((0, n))
        self.y64 = np.zeros((0, n))
        self.theta64 = np.zeros((0, n))
        self.w64 = np.zeros((0, n))
        # Trig shadows: cos64/sin64 == np.cos/sin(theta64) after every
        # write.  Yaw trig feeds three stages per step (motion compose,
        # beam transform, estimate); maintaining it at the write sites —
        # one evaluation after each yaw update, exact gathers through
        # resampling — evaluates it once instead of three times.
        self.cos64 = np.zeros((0, n))
        self.sin64 = np.zeros((0, n))
        self._scratch_a = np.empty(n)
        self._scratch_b = np.empty(n)
        self._scratch_i = np.empty(n, dtype=np.int64)
        self._scratch_f = np.empty(n, dtype=np.float32)
        super().__init__(config, rows, obs_chunk_elements)
        # The fully fused row paths are implemented for float32 storage
        # only; fp16 rows run the generic (batched-style) stages, which
        # every provider supports.
        self._fused = bool(getattr(self._provider, "fused_f32", False)) and (
            np.dtype(self.dtype) == np.float32
        )

    # ------------------------------------------------------------------
    # Shadow maintenance: shadow == stored.astype(float64), always.
    # ------------------------------------------------------------------
    def ensure_capacity(self, rows: int) -> None:
        super().ensure_capacity(rows)
        old_rows = self.x64.shape[0]
        if old_rows >= self.rows:
            return

        def grow(shadow: np.ndarray) -> np.ndarray:
            wide = np.zeros((self.rows, self.count))
            wide[: shadow.shape[0]] = shadow
            return wide

        self.x64 = grow(self.x64)
        self.y64 = grow(self.y64)
        self.theta64 = grow(self.theta64)
        self.w64 = grow(self.w64)
        self.cos64 = grow(self.cos64)
        self.sin64 = grow(self.sin64)
        # Fresh rows hold theta64 == 0; keep the trig invariant exact
        # even before init_row touches them.
        self.cos64[old_rows:] = 1.0

    def _sync_shadows(self, rows, weights: bool = True) -> None:
        self.x64[rows] = self.x[rows].astype(np.float64)
        self.y64[rows] = self.y[rows].astype(np.float64)
        theta64 = self.theta[rows].astype(np.float64)
        self.theta64[rows] = theta64
        self.cos64[rows] = np.cos(theta64)
        self.sin64[rows] = np.sin(theta64)
        if weights:
            self.w64[rows] = self.weights[rows].astype(np.float64)

    def _store(self, rows, x, y, theta, weights=None) -> None:
        super()._store(rows, x, y, theta, weights)
        self._sync_shadows(rows, weights=weights is not None)

    def import_row(self, row: int, snapshot: FilterStateSnapshot) -> None:
        super().import_row(row, snapshot)
        self._sync_shadows(row)

    # ------------------------------------------------------------------
    # Fused step stages
    # ------------------------------------------------------------------
    def _motion_update(self, triggered: np.ndarray, work: Sequence[StepWork]) -> None:
        config = self.config
        n = self.count
        if self._fused:
            # Per-row fused compose+wrap+store+shadow refresh: numpy
            # supplies the RNG draws (reference order) and the trig of
            # the prior yaw; everything IEEE-exact runs in the provider.
            for item in work:
                pending = item.step.pending
                assert pending is not None  # packed steps always fired
                for row in item.rows:
                    nx, ny, nt = kernels.sample_motion_noise(
                        self.rngs[row], n, config.sigma_odom_xy, config.sigma_odom_theta
                    )
                    theta_row = self.theta64[row]
                    self._provider.compose_store_row(
                        self.cos64[row],
                        self.sin64[row],
                        pending.x + nx,
                        pending.y + ny,
                        pending.theta + nt,
                        self.x[row],
                        self.y[row],
                        self.theta[row],
                        self.x64[row],
                        self.y64[row],
                        theta_row,
                    )
                    # The compose consumed the prior trig; the row now
                    # holds the posterior yaw, so re-establish the
                    # invariant (the step's single trig evaluation).
                    np.cos(theta_row, out=self.cos64[row])
                    np.sin(theta_row, out=self.sin64[row])
            return

        rows = len(triggered)
        noise_x = np.empty((rows, n))
        noise_y = np.empty((rows, n))
        noise_theta = np.empty((rows, n))
        inc = np.empty((rows, 3))
        i = 0
        for item in work:
            pending = item.step.pending
            assert pending is not None  # packed steps always fired
            for row in item.rows:
                noise_x[i], noise_y[i], noise_theta[i] = kernels.sample_motion_noise(
                    self.rngs[row], n, config.sigma_odom_xy, config.sigma_odom_theta
                )
                inc[i] = (pending.x, pending.y, pending.theta)
                i += 1

        # Shadows replace the parent's three widening casts; the compose
        # kernel (numpy trig + elementwise) is shared unchanged, and the
        # inherited _store applies the second wrap + storage cast.
        new_x, new_y, new_theta = kernels.compose_increment(
            self.x64[triggered],
            self.y64[triggered],
            self.theta64[triggered],
            inc[:, 0:1] + noise_x,
            inc[:, 1:2] + noise_y,
            inc[:, 2:3] + noise_theta,
        )
        self._store(triggered, new_x, new_y, new_theta)

    def _observation_update(self, work: Sequence[StepWork]) -> np.ndarray:
        config = self.config
        denom = 2.0 * config.sigma_obs**2
        inv_count = 1.0 / self.count
        observed: list[int] = []
        for item in work:
            step = item.step
            if step.beams is None:
                continue
            for chunk in self._row_chunks(item.rows, step.beams.beam_count):
                cos_t = self.cos64[chunk]
                sin_t = self.sin64[chunk]
                with obs.span(SPAN_GATHER):
                    log_lik = self._provider.loglik_sums(
                        self.x64[chunk],
                        self.y64[chunk],
                        cos_t,
                        sin_t,
                        step.end_x,
                        step.end_y,
                        item.field,
                    )
                with obs.span(SPAN_WEIGHT):
                    np.negative(log_lik, out=log_lik)
                    log_lik /= denom
                    if self._fused:
                        # posterior_log_weights split at its one
                        # transcendental: replication scale and per-row
                        # max subtraction feed numpy's exp, then the
                        # provider fuses prior multiply + storage cast +
                        # normalize + shadow refresh per row.
                        log_lik *= config.beam_replication
                        log_lik -= log_lik.max(axis=-1, keepdims=True)
                        like = np.exp(log_lik)
                        for j, row in enumerate(chunk):
                            row = int(row)
                            self._provider.update_weights_row(
                                self.w64[row],
                                like[j],
                                self.weights[row],
                                inv_count,
                                self._scratch_a,
                            )
                    else:
                        updated = kernels.posterior_log_weights(
                            self.w64[chunk], log_lik, config.beam_replication
                        )
                        stored = updated.astype(self.dtype)
                        kernels.normalize_weights(stored, self.dtype)
                        self.weights[chunk] = stored
                        self.w64[chunk] = stored.astype(np.float64)
            observed.extend(item.rows)
        return np.array(observed, dtype=np.int64)

    def _resample(self, observed: np.ndarray) -> None:
        threshold = self.config.resample_ess_fraction * self.count
        ess = self._provider.ess_rows(self.w64[observed], self._scratch_a)
        uniform = np.asarray(1.0 / self.count, dtype=self.dtype)
        uniform64 = float(np.float64(uniform))
        resampled = 0
        for i, run in enumerate(observed):
            run = int(run)
            if ess[i] > threshold:
                continue
            resampled += 1
            u0 = kernels.draw_wheel_offset(self.rngs[run], self.count)
            if self._fused:
                # Fused wheel + gather of the three stored rows and
                # their five shadows; the weight rows reset to uniform
                # below.
                self._provider.resample_row(
                    self.w64[run],
                    u0,
                    self.x[run],
                    self.y[run],
                    self.theta[run],
                    self.x64[run],
                    self.y64[run],
                    self.theta64[run],
                    self.cos64[run],
                    self.sin64[run],
                    self._scratch_a,
                    self._scratch_b,
                    self._scratch_i,
                    self._scratch_f,
                )
            else:
                indices = self._provider.resample_indices(
                    self.w64[run], u0, self._scratch_a
                )
                self.x[run] = self.x[run][indices]
                self.y[run] = self.y[run][indices]
                self.theta[run] = self.theta[run][indices]
                # Gathers of exact shadows stay exact; uniform re-widens
                # the stored value so the invariant holds at fp16 too.
                self.x64[run] = self.x64[run][indices]
                self.y64[run] = self.y64[run][indices]
                self.theta64[run] = self.theta64[run][indices]
                self.cos64[run] = self.cos64[run][indices]
                self.sin64[run] = self.sin64[run][indices]
            self.weights[run] = uniform
            self.w64[run] = uniform64
        obs.counter(COUNTER_RESAMPLES).inc(resampled)
        obs.counter(COUNTER_RESAMPLE_SKIPS).inc(len(observed) - resampled)

    def _refresh_estimates(self, triggered: np.ndarray) -> None:
        # Row views, no stacked gathers: every reduction here is per-row
        # anyway, and the trig is elementwise — bitwise identical to the
        # parent's stacked formulation.
        for run in triggered:
            run = int(run)
            w64 = self.w64[run]
            total = self._provider.det_sum_row(w64, self._scratch_a)
            if not (total > 0.0 and math.isfinite(total)):
                self._refresh_estimate(run)  # rare: scalar fallback
                continue
            wn_total, mean_x, mean_y, sin_sum, cos_sum = self._provider.estimate_row(
                self.x64[run],
                self.y64[run],
                self.sin64[run],
                self.cos64[run],
                w64,
                total,
                self._scratch_a,
                self._scratch_b,
            )
            eps = 1e-9 * max(1.0, wn_total)
            if abs(sin_sum) < eps and abs(cos_sum) < eps:
                mean_theta = 0.0
            else:
                mean_theta = math.atan2(sin_sum / wn_total, cos_sum / wn_total)
            estimate = Pose2D(mean_x, mean_y, mean_theta)
            self.estimates[run] = estimate
            self.estimate_arrays[run] = estimate.as_array()


class FastBackend(BatchedBackend):
    """Fused-kernel executor: batched orchestration, per-row fused math.

    Inherits the batched backend's run loop, replay-plan cache and row
    packing; only the stack construction changes, so ``--backend fast``
    is a drop-in throughput upgrade everywhere a backend name is
    accepted (sweeps, campaigns, serve cohorts, benchmarks).

    Raises :class:`ConfigurationError` at construction when no fused
    implementation is available (see :func:`resolve_provider`).
    """

    name = "fast"

    def __init__(
        self,
        obs_chunk_elements: int = OBS_CHUNK_ELEMENTS,
        impl: str | None = None,
    ) -> None:
        super().__init__(obs_chunk_elements)
        self._provider = resolve_provider(impl)

    @property
    def provider_name(self) -> str:
        """Which implementation tier serves the fused kernels."""
        return self._provider.name

    def open_stack(self, config: MclConfig, rows: int = 0) -> FastStack:
        """Open the step-level entry point: a fused-kernel session stack."""
        return FastStack(
            config, rows, self.obs_chunk_elements, provider=self._provider
        )
