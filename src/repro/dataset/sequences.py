"""The six canonical evaluation sequences (paper Sec. IV-A).

The paper records six flights through the physical drone maze.  Here each
sequence is a scripted waypoint tour through the main maze of the combined
world — six distinct routes with distinct simulation seeds, covering the
corridor system from different directions so that localization sees varied
viewpoints.

Sequences are generated on demand and cached as ``.npz`` under the data
directory (``REPRO_DATA_DIR`` env var, default ``<cwd>/data/sequences``),
because a 60-90 s flight simulation with full raycasting takes a few
seconds to produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..common.errors import DatasetError
from ..common.paths import data_root
from ..maps.maze import DroneWorld, build_drone_maze_world
from ..maps.planning import plan_tour, snap_to_clearance
from ..vehicle.crazyflie import CrazyflieSimulator, SimConfig
from .recorder import RecordedSequence

#: Planner clearance used for all scripted routes, metres.
ROUTE_CLEARANCE_M = 0.15

#: Cap on the simulated flight duration per sequence, seconds.
MAX_FLIGHT_S = 110.0


@dataclass(frozen=True)
class SequenceScript:
    """Recipe for one canonical sequence."""

    name: str
    #: Stops in main-maze local coordinates (metres from the maze corner).
    stops: tuple[tuple[float, float], ...]
    #: Seed of the platform simulation (sensors, drift).
    sim_seed: int


#: Six routes sweeping the maze from different directions.  Coordinates
#: are in main-maze local frame; all are snapped to clearance-valid cells
#: before planning, so small imprecision is harmless.
SEQUENCE_SCRIPTS: tuple[SequenceScript, ...] = (
    SequenceScript(
        "seq0-serpentine-up",
        ((0.5, 0.5), (3.5, 0.5), (3.5, 1.6), (0.6, 1.6), (0.5, 2.5), (2.85, 2.5),
         (2.85, 3.5), (0.6, 3.5), (2.5, 3.5), (2.85, 2.6), (0.6, 2.5), (0.5, 1.6),
         (2.0, 1.6)),
        sim_seed=100,
    ),
    SequenceScript(
        "seq1-serpentine-down",
        ((0.6, 3.5), (2.85, 3.5), (2.85, 2.5), (0.5, 2.5), (0.6, 1.6), (3.5, 1.6),
         (3.5, 0.5), (0.5, 0.5), (2.0, 0.5), (3.4, 0.8), (3.5, 1.6), (1.5, 1.6)),
        sim_seed=101,
    ),
    SequenceScript(
        "seq2-lower-loop",
        ((1.5, 0.5), (3.5, 0.5), (3.5, 1.6), (1.8, 1.6), (1.8, 0.5), (0.5, 0.5),
         (0.5, 1.6), (2.2, 1.6)),
        sim_seed=102,
    ),
    SequenceScript(
        "seq3-upper-loop",
        ((3.5, 3.5), (2.85, 3.5), (2.85, 2.5), (3.6, 2.5), (3.6, 3.4), (2.0, 3.4),
         (2.0, 2.4), (1.0, 2.4), (0.5, 2.5), (0.5, 3.4), (1.2, 3.4), (2.85, 3.0),
         (3.5, 2.5), (2.0, 2.4)),
        sim_seed=103,
    ),
    SequenceScript(
        "seq4-cross-maze",
        ((0.5, 0.5), (0.5, 1.6), (3.5, 1.6), (3.5, 2.5), (2.85, 3.4), (1.0, 3.4),
         (0.5, 2.5), (1.8, 2.5)),
        sim_seed=104,
    ),
    SequenceScript(
        "seq5-revisit",
        ((2.2, 0.5), (0.5, 0.5), (0.5, 1.6), (2.0, 1.6), (2.0, 0.6), (3.4, 0.6),
         (3.5, 1.6), (1.0, 1.6), (0.5, 2.5), (2.5, 2.5)),
        sim_seed=105,
    ),
)


def data_directory() -> Path:
    """Directory holding cached sequence files."""
    return data_root() / "sequences"


def generate_sequence(
    script: SequenceScript, world: DroneWorld | None = None
) -> RecordedSequence:
    """Fly one scripted route and record it (no caching)."""
    world = world or build_drone_maze_world()
    main = world.main
    stops_world = [
        snap_to_clearance(
            world.grid,
            (main.origin_x + x, main.origin_y + y),
            ROUTE_CLEARANCE_M,
        )
        for x, y in script.stops
    ]
    route = plan_tour(world.grid, stops_world, clearance_m=ROUTE_CLEARANCE_M)
    simulator = CrazyflieSimulator(
        world.grid,
        route,
        seed=script.sim_seed,
        config=SimConfig(max_duration_s=MAX_FLIGHT_S),
    )
    steps = simulator.run()
    return RecordedSequence.from_sim_steps(script.name, steps)


def load_sequence(
    index: int,
    world: DroneWorld | None = None,
    cache: bool = True,
) -> RecordedSequence:
    """Load (or generate and cache) one of the six canonical sequences."""
    if not 0 <= index < len(SEQUENCE_SCRIPTS):
        raise DatasetError(
            f"sequence index must be 0..{len(SEQUENCE_SCRIPTS) - 1}, got {index}"
        )
    script = SEQUENCE_SCRIPTS[index]
    cache_path = data_directory() / f"{script.name}.npz"
    if cache and cache_path.exists():
        return RecordedSequence.load_npz(cache_path)
    sequence = generate_sequence(script, world)
    if cache:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        sequence.save_npz(cache_path)
    return sequence


def load_all_sequences(
    world: DroneWorld | None = None, cache: bool = True
) -> list[RecordedSequence]:
    """Load all six canonical sequences (generating missing ones)."""
    world = world or build_drone_maze_world()
    return [
        load_sequence(index, world, cache) for index in range(len(SEQUENCE_SCRIPTS))
    ]
