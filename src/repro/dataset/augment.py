"""Dataset perturbations for robustness evaluation (failure injection).

The paper evaluates on clean recordings; a deployment sees worse: burst
sensor dropouts (reflective surfaces, IR interference), degraded odometry
(poor floor texture for the optical flow), and range bias (temperature
drift of the ToF).  These transforms produce perturbed copies of a
:class:`RecordedSequence` so the same evaluation harness quantifies how
gracefully localization degrades — used by the robustness tests.

All transforms are pure: the input sequence is never mutated.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import DatasetError
from ..common.geometry import Pose2D
from ..common.rng import make_rng
from ..sensors.tof import ZoneStatus
from .recorder import RecordedSequence, SensorTrack


def _copy_tracks(sequence: RecordedSequence) -> list[SensorTrack]:
    return [
        SensorTrack(
            sensor_name=track.sensor_name,
            ranges_m=track.ranges_m.copy(),
            status=track.status.copy(),
            azimuths=track.azimuths.copy(),
            mount_x=track.mount_x,
            mount_y=track.mount_y,
        )
        for track in sequence.tracks
    ]


def with_dropout_bursts(
    sequence: RecordedSequence,
    burst_count: int = 3,
    burst_frames: int = 15,
    seed: int = 0,
) -> RecordedSequence:
    """Flag whole frames as INTERFERENCE in random bursts.

    A burst of ``burst_frames`` consecutive frames (one second at 15 Hz)
    with every zone flagged models the classic specular-surface blackout.
    """
    if burst_count < 0 or burst_frames < 1:
        raise DatasetError("invalid burst parameters")
    if burst_frames >= len(sequence):
        raise DatasetError("burst longer than the sequence")
    rng = make_rng(seed, "dropout-bursts")
    tracks = _copy_tracks(sequence)
    for __ in range(burst_count):
        start = int(rng.integers(0, len(sequence) - burst_frames))
        for track in tracks:
            track.status[start : start + burst_frames, :, :] = int(
                ZoneStatus.INTERFERENCE
            )
    return RecordedSequence(
        name=f"{sequence.name}+bursts",
        timestamps=sequence.timestamps.copy(),
        ground_truth=sequence.ground_truth.copy(),
        odometry=sequence.odometry.copy(),
        tracks=tracks,
    )


def with_range_bias(
    sequence: RecordedSequence, bias_m: float = 0.05
) -> RecordedSequence:
    """Add a constant bias to every valid range (sensor miscalibration)."""
    tracks = _copy_tracks(sequence)
    for track in tracks:
        valid = track.status == int(ZoneStatus.VALID)
        track.ranges_m[valid] = np.maximum(track.ranges_m[valid] + bias_m, 0.0)
    return RecordedSequence(
        name=f"{sequence.name}+bias{bias_m:+.2f}",
        timestamps=sequence.timestamps.copy(),
        ground_truth=sequence.ground_truth.copy(),
        odometry=sequence.odometry.copy(),
        tracks=tracks,
    )


def with_degraded_odometry(
    sequence: RecordedSequence,
    extra_noise_xy: float = 0.01,
    extra_scale_error: float = 0.05,
    seed: int = 0,
) -> RecordedSequence:
    """Re-corrupt the odometry stream (bad floor texture for the flow).

    The recorded odometry poses are re-integrated with an additional
    multiplicative scale error on the increments plus white position
    noise, preserving increment structure so MCL's odometry input stays
    self-consistent.
    """
    if extra_noise_xy < 0 or extra_scale_error < 0:
        raise DatasetError("degradation magnitudes must be non-negative")
    rng = make_rng(seed, "degraded-odometry")
    scale = 1.0 + float(rng.normal(0.0, extra_scale_error))
    new_odometry = np.empty_like(sequence.odometry)
    current = sequence.odometry_pose(0)
    new_odometry[0] = current.as_array()
    previous_recorded = current
    for index in range(1, len(sequence)):
        recorded = sequence.odometry_pose(index)
        increment = previous_recorded.between(recorded)
        previous_recorded = recorded
        noisy = Pose2D(
            increment.x * scale + float(rng.normal(0.0, extra_noise_xy)),
            increment.y * scale + float(rng.normal(0.0, extra_noise_xy)),
            increment.theta,
        )
        current = current.compose(noisy)
        new_odometry[index] = current.as_array()
    return RecordedSequence(
        name=f"{sequence.name}+odo-degraded",
        timestamps=sequence.timestamps.copy(),
        ground_truth=sequence.ground_truth.copy(),
        odometry=new_odometry,
        tracks=_copy_tracks(sequence),
    )


def truncated(sequence: RecordedSequence, max_duration_s: float) -> RecordedSequence:
    """Keep only the first ``max_duration_s`` seconds of a sequence."""
    if max_duration_s <= 0:
        raise DatasetError("max_duration_s must be positive")
    limit = float(sequence.timestamps[0]) + max_duration_s
    keep = int(np.searchsorted(sequence.timestamps, limit, side="right"))
    keep = max(keep, 2)
    tracks = [
        SensorTrack(
            sensor_name=track.sensor_name,
            ranges_m=track.ranges_m[:keep].copy(),
            status=track.status[:keep].copy(),
            azimuths=track.azimuths.copy(),
            mount_x=track.mount_x,
            mount_y=track.mount_y,
        )
        for track in sequence.tracks
    ]
    return RecordedSequence(
        name=f"{sequence.name}+trunc{max_duration_s:.0f}s",
        timestamps=sequence.timestamps[:keep].copy(),
        ground_truth=sequence.ground_truth[:keep].copy(),
        odometry=sequence.odometry[:keep].copy(),
        tracks=tracks,
    )
