"""Evaluation dataset: recorded sequences and the mocap ground truth."""

from .recorder import RecordedSequence, SensorTrack
from .sequences import (
    SEQUENCE_SCRIPTS,
    SequenceScript,
    data_directory,
    generate_sequence,
    load_all_sequences,
    load_sequence,
)
from .vicon import ViconSpec, ViconTracker

__all__ = [
    "RecordedSequence",
    "SensorTrack",
    "SEQUENCE_SCRIPTS",
    "SequenceScript",
    "data_directory",
    "generate_sequence",
    "load_all_sequences",
    "load_sequence",
    "ViconSpec",
    "ViconTracker",
]
