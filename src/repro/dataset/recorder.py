"""Recorded flight sequences: the paper's dataset format.

The paper's dataset has six sequences, each containing "ToF measurements
from two sensors, internal state estimation based on the FlowDeck's
optical flow and ground truth pose" (Sec. IV-A).  :class:`RecordedSequence`
holds exactly that, in flat numpy arrays for compact ``.npz``
serialization, and reconstructs per-step :class:`TofFrame` objects for the
localizer on replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..common.errors import DatasetError
from ..common.geometry import Pose2D
from ..sensors.tof import TofFrame
from ..vehicle.crazyflie import SimStep


@dataclass
class SensorTrack:
    """All frames of one ToF sensor across a sequence."""

    sensor_name: str
    ranges_m: np.ndarray  # (T, n, n)
    status: np.ndarray  # (T, n, n)
    azimuths: np.ndarray  # (n,)
    mount_x: float
    mount_y: float

    def frame(self, index: int, timestamp: float) -> TofFrame:
        """Materialize one frame for the localizer."""
        return TofFrame(
            timestamp=timestamp,
            sensor_name=self.sensor_name,
            ranges_m=self.ranges_m[index],
            status=self.status[index],
            azimuths=self.azimuths,
            mount_x=self.mount_x,
            mount_y=self.mount_y,
        )


@dataclass
class RecordedSequence:
    """One evaluation flight: timestamps, poses, odometry, ToF tracks."""

    name: str
    timestamps: np.ndarray  # (T,)
    ground_truth: np.ndarray  # (T, 3): x, y, theta from mocap
    odometry: np.ndarray  # (T, 3): the on-board drifting estimate
    tracks: list[SensorTrack]

    def __post_init__(self) -> None:
        count = self.timestamps.shape[0]
        if self.ground_truth.shape != (count, 3) or self.odometry.shape != (count, 3):
            raise DatasetError("pose arrays must be (T, 3) matching timestamps")
        for track in self.tracks:
            if track.ranges_m.shape[0] != count:
                raise DatasetError(
                    f"sensor track {track.sensor_name} length mismatch"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    @property
    def duration_s(self) -> float:
        """Flight duration in seconds."""
        if len(self) == 0:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def ground_truth_pose(self, index: int) -> Pose2D:
        return Pose2D.from_array(self.ground_truth[index])

    def odometry_pose(self, index: int) -> Pose2D:
        return Pose2D.from_array(self.odometry[index])

    def steps(self) -> Iterator[SimStep]:
        """Replay the sequence as :class:`SimStep` objects."""
        for index in range(len(self)):
            timestamp = float(self.timestamps[index])
            yield SimStep(
                timestamp=timestamp,
                ground_truth=self.ground_truth_pose(index),
                odometry=self.odometry_pose(index),
                frames=[track.frame(index, timestamp) for track in self.tracks],
            )

    # ------------------------------------------------------------------
    # Construction from a simulation
    # ------------------------------------------------------------------
    @staticmethod
    def from_sim_steps(name: str, steps: list[SimStep]) -> "RecordedSequence":
        """Pack simulator output into the recorded format."""
        if not steps:
            raise DatasetError("cannot record an empty flight")
        timestamps = np.array([s.timestamp for s in steps], dtype=np.float64)
        ground_truth = np.stack([s.ground_truth.as_array() for s in steps])
        odometry = np.stack([s.odometry.as_array() for s in steps])
        tracks = []
        sensor_names = [frame.sensor_name for frame in steps[0].frames]
        for slot, sensor_name in enumerate(sensor_names):
            first = steps[0].frames[slot]
            tracks.append(
                SensorTrack(
                    sensor_name=sensor_name,
                    ranges_m=np.stack([s.frames[slot].ranges_m for s in steps]),
                    status=np.stack([s.frames[slot].status for s in steps]),
                    azimuths=first.azimuths.copy(),
                    mount_x=first.mount_x,
                    mount_y=first.mount_y,
                )
            )
        return RecordedSequence(
            name=name,
            timestamps=timestamps,
            ground_truth=ground_truth,
            odometry=odometry,
            tracks=tracks,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_npz_payload(self) -> dict[str, np.ndarray]:
        """The flat array dictionary :meth:`save_npz` serializes.

        Exposed separately so composite archives (e.g. scenario files
        bundling a map and a flight) can embed a sequence alongside their
        own arrays and round-trip it with :meth:`from_npz_payload`.
        """
        payload: dict[str, np.ndarray] = {
            "name": np.array(self.name),
            "timestamps": self.timestamps,
            "ground_truth": self.ground_truth,
            "odometry": self.odometry,
            "sensor_names": np.array([t.sensor_name for t in self.tracks]),
        }
        for track in self.tracks:
            prefix = f"track_{track.sensor_name}"
            payload[f"{prefix}_ranges"] = track.ranges_m
            payload[f"{prefix}_status"] = track.status
            payload[f"{prefix}_azimuths"] = track.azimuths
            payload[f"{prefix}_mount"] = np.array([track.mount_x, track.mount_y])
        return payload

    @staticmethod
    def from_npz_payload(data) -> "RecordedSequence":
        """Rebuild a sequence from a :meth:`to_npz_payload` mapping.

        ``data`` may be an open ``NpzFile`` or any mapping of arrays.
        """
        tracks = []
        for sensor_name in [str(n) for n in data["sensor_names"]]:
            prefix = f"track_{sensor_name}"
            mount = data[f"{prefix}_mount"]
            tracks.append(
                SensorTrack(
                    sensor_name=sensor_name,
                    ranges_m=data[f"{prefix}_ranges"],
                    status=data[f"{prefix}_status"],
                    azimuths=data[f"{prefix}_azimuths"],
                    mount_x=float(mount[0]),
                    mount_y=float(mount[1]),
                )
            )
        return RecordedSequence(
            name=str(data["name"]),
            timestamps=data["timestamps"],
            ground_truth=data["ground_truth"],
            odometry=data["odometry"],
            tracks=tracks,
        )

    def save_npz(self, path: str | Path) -> None:
        """Write the sequence to a compressed ``.npz`` archive."""
        np.savez_compressed(Path(path), **self.to_npz_payload())

    @staticmethod
    def load_npz(path: str | Path) -> "RecordedSequence":
        """Load a sequence written by :meth:`save_npz`."""
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"sequence file not found: {path}")
        with np.load(path) as data:
            return RecordedSequence.from_npz_payload(data)
