"""Motion-capture ground-truth model (Vicon Vero 2.2, paper Sec. IV-A).

The paper extracts ground truth from a six-camera Vicon system covering
the 16 m² flight volume.  Mocap pose error is sub-millimetre — negligible
against the 0.15 m localization accuracy — but modelling it keeps the
evaluation honest about where "truth" comes from: the recorded ground
truth is the mocap stream, not the simulator's internal state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import SensorError
from ..common.geometry import Pose2D


@dataclass(frozen=True)
class ViconSpec:
    """Noise of the mocap pose stream."""

    position_noise_sigma_m: float = 0.0005
    yaw_noise_sigma_rad: float = 0.001

    def __post_init__(self) -> None:
        if self.position_noise_sigma_m < 0 or self.yaw_noise_sigma_rad < 0:
            raise SensorError("mocap noise sigmas must be non-negative")


class ViconTracker:
    """Samples the mocap pose of the drone."""

    def __init__(self, spec: ViconSpec | None = None, rng: np.random.Generator | None = None) -> None:
        self.spec = spec or ViconSpec()
        self._rng = rng or np.random.default_rng(0)

    def sample(self, true_pose: Pose2D) -> Pose2D:
        """Return the mocap measurement of the true pose."""
        spec = self.spec
        return Pose2D(
            true_pose.x + self._rng.normal(0.0, spec.position_noise_sigma_m),
            true_pose.y + self._rng.normal(0.0, spec.position_noise_sigma_m),
            true_pose.theta + self._rng.normal(0.0, spec.yaw_noise_sigma_rad),
        )
