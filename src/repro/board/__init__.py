"""Board-level models: buses and the whole-drone power/latency budget."""

from .buses import (
    SPI_UPDATE_PAYLOAD_BYTES,
    VL53L5CX_FRAME_BYTES_8X8,
    I2cBus,
    SpiBus,
    pipeline_transfer_overhead_s,
)
from .system import (
    ELECTRONICS_POWER_W,
    MOTOR_HOVER_POWER_W,
    LatencyPipeline,
    SystemPowerBudget,
    end_to_end_latency,
    system_power_budget,
)

__all__ = [
    "SPI_UPDATE_PAYLOAD_BYTES",
    "VL53L5CX_FRAME_BYTES_8X8",
    "I2cBus",
    "SpiBus",
    "pipeline_transfer_overhead_s",
    "ELECTRONICS_POWER_W",
    "MOTOR_HOVER_POWER_W",
    "LatencyPipeline",
    "SystemPowerBudget",
    "end_to_end_latency",
    "system_power_budget",
]
