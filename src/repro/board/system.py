"""Whole-drone power budget: the paper's "below 7 %" claim (Sec. IV-E).

The paper accounts the sensing + processing power as:

* two VL53L5CX multizone ToF sensors at 320 mW each,
* the remaining Crazyflie electronics (everything except motors) at
  280 mW,
* the GAP9 running MCL (13-61 mW depending on the operating point),

summing to 981 mW at the most powerful configuration — around 7 % of the
overall drone power, which puts hover propulsion at ~13 W.  This module
reproduces that arithmetic and the end-to-end latency pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import PlatformModelError
from ..sensors.tof import VL53L5CX_POWER_W
from ..soc.gap9 import GAP9
from ..soc.perf import Gap9PerfModel
from ..soc.power import Gap9PowerModel
from .buses import pipeline_transfer_overhead_s

#: Crazyflie electronics (except motors) power, paper Sec. IV-E.
ELECTRONICS_POWER_W = 0.280

#: Hover propulsion power implied by the paper's 7 % figure:
#: 0.981 W of sensing+processing == ~7 % of total -> motors ~= 13.0 W.
MOTOR_HOVER_POWER_W = 13.02


@dataclass(frozen=True)
class SystemPowerBudget:
    """Breakdown of the drone's power at one operating point, in watts."""

    motors_w: float
    electronics_w: float
    tof_sensors_w: float
    gap9_w: float

    @property
    def sensing_processing_w(self) -> float:
        """Everything the localization payload adds: sensors + electronics + SoC."""
        return self.electronics_w + self.tof_sensors_w + self.gap9_w

    @property
    def total_w(self) -> float:
        return self.motors_w + self.sensing_processing_w

    @property
    def sensing_processing_fraction(self) -> float:
        """Fraction of total drone power spent on sensing + processing."""
        return self.sensing_processing_w / self.total_w


def system_power_budget(
    gap9_frequency_hz: float = GAP9.max_frequency_hz,
    tof_sensor_count: int = 2,
) -> SystemPowerBudget:
    """Assemble the paper's power budget at a GAP9 operating point."""
    if tof_sensor_count < 0:
        raise PlatformModelError("sensor count must be non-negative")
    gap9_w = Gap9PowerModel().average_power_w(gap9_frequency_hz)
    return SystemPowerBudget(
        motors_w=MOTOR_HOVER_POWER_W,
        electronics_w=ELECTRONICS_POWER_W,
        tof_sensors_w=tof_sensor_count * VL53L5CX_POWER_W,
        gap9_w=gap9_w,
    )


@dataclass(frozen=True)
class LatencyPipeline:
    """End-to-end latency from sensor frame to pose estimate, seconds."""

    sensor_frame_s: float
    transfer_s: float
    mcl_update_s: float

    @property
    def total_s(self) -> float:
        return self.sensor_frame_s + self.transfer_s + self.mcl_update_s


def end_to_end_latency(
    particle_count: int,
    cores: int = 8,
    frequency_hz: float = GAP9.max_frequency_hz,
    tof_rate_hz: float = 15.0,
) -> LatencyPipeline:
    """Latency pipeline of one localization update.

    ``sensor_frame_s`` is the ranging integration window (one frame
    period); ``transfer_s`` the bus shipment; ``mcl_update_s`` the GAP9
    compute (which already contains the paper's 40 us preprocessing
    overhead).
    """
    if tof_rate_hz <= 0:
        raise PlatformModelError("tof_rate_hz must be positive")
    mcl_s = Gap9PerfModel(frequency_hz).update_time_ns(particle_count, cores) * 1e-9
    return LatencyPipeline(
        sensor_frame_s=1.0 / tof_rate_hz,
        transfer_s=pipeline_transfer_overhead_s(),
        mcl_update_s=mcl_s,
    )
