"""Bus transfer-time models for the sensing data path (paper Fig. 2).

The data path of the paper's system: the STM32 reads each VL53L5CX zone
matrix over **I2C**, then ships ranges plus the internal state estimate to
the GAP9 over **SPI**.  Neither link is a bottleneck at 15 Hz, but both
contribute to the constant per-iteration pipeline overhead the paper
reports (~40 us of "preprocessing the sensor data and transferring
information to the tasks") — these models quantify that contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import PlatformModelError

#: Payload bytes of one VL53L5CX 8x8 frame over I2C: per zone the driver
#: reads a 2-byte distance plus a 1-byte target status, and the frame
#: carries a ~16-byte header block.
VL53L5CX_FRAME_BYTES_8X8 = 64 * 3 + 16

#: Bytes shipped from the STM32 to GAP9 per update over SPI: two sensors'
#: ranges+status (2 x 192 B) plus the 12-byte state estimate and framing.
SPI_UPDATE_PAYLOAD_BYTES = 2 * 192 + 12 + 4


@dataclass(frozen=True)
class I2cBus:
    """I2C fast-mode-plus link between the ToF sensors and the STM32."""

    clock_hz: float = 1_000_000.0
    #: Effective bits on the wire per payload byte (start/ack framing).
    bits_per_byte: float = 9.0

    def transfer_time_s(self, payload_bytes: int) -> float:
        """Wire time for a payload of the given size."""
        if payload_bytes < 0:
            raise PlatformModelError("payload must be non-negative")
        return payload_bytes * self.bits_per_byte / self.clock_hz

    def frame_time_s(self) -> float:
        """Wire time of one full 8x8 zone frame."""
        return self.transfer_time_s(VL53L5CX_FRAME_BYTES_8X8)

    def max_frame_rate_hz(self) -> float:
        """Upper bound on the frame rate the bus alone could sustain."""
        return 1.0 / self.frame_time_s()


@dataclass(frozen=True)
class SpiBus:
    """SPI link from the STM32 to the GAP9 deck."""

    clock_hz: float = 10_000_000.0

    def transfer_time_s(self, payload_bytes: int) -> float:
        """Wire time for a payload (SPI moves one bit per clock)."""
        if payload_bytes < 0:
            raise PlatformModelError("payload must be non-negative")
        return payload_bytes * 8.0 / self.clock_hz

    def update_time_s(self) -> float:
        """Wire time of one full MCL input package."""
        return self.transfer_time_s(SPI_UPDATE_PAYLOAD_BYTES)


def pipeline_transfer_overhead_s(
    i2c: I2cBus | None = None, spi: SpiBus | None = None
) -> float:
    """Per-update data-movement component of the 40 us pipeline overhead.

    The I2C readout overlaps the previous compute window (the sensor
    streams continuously), so only the SPI shipment plus a DMA setup
    allowance land on the critical path.
    """
    spi = spi or SpiBus()
    dma_setup_s = 5e-6
    return spi.update_time_s() + dma_setup_s
