"""Behavioural simulator of the GAP9 cluster's work distribution.

The analytical latency model (:mod:`repro.soc.perf`) answers *how long*;
this module answers *why*: it simulates the fork/join execution of the
four MCL steps across the 8 worker cores at the granularity of per-core
busy time, exposing

* the even particle chunking of the motion/observation/pose steps (their
  speedup approaches 8 minus the fork/join overhead), and
* the **weight-dependent imbalance of the resampling wheel** (Fig. 4):
  each core draws the arrows landing in its block's weight interval, so a
  concentrated posterior loads one core with most of the draws — the
  structural reason the paper observes that "the resample step scales
  the worst" (Sec. IV-D).

The makespan of a simulated step is ``fork + max(core busy times) +
join``; speedups derived here are *structural* (relative), while absolute
numbers come from the calibrated model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import PlatformModelError
from ..core.resampling import parallel_systematic_resample
from .gap9 import GAP9


@dataclass(frozen=True)
class ClusterTimings:
    """Overheads of dispatching work to the cluster, in cycles."""

    fork_cycles: int = 800
    join_cycles: int = 400
    #: Barrier synchronization per phase boundary.
    barrier_cycles: int = 200


@dataclass
class StepTrace:
    """Outcome of simulating one parallel step."""

    core_busy_cycles: np.ndarray
    makespan_cycles: float

    @property
    def busiest_core(self) -> int:
        return int(np.argmax(self.core_busy_cycles))

    @property
    def imbalance(self) -> float:
        """max/mean busy-cycle ratio; 1.0 is a perfect balance."""
        mean = float(np.mean(self.core_busy_cycles))
        if mean == 0.0:
            return 1.0
        return float(np.max(self.core_busy_cycles)) / mean


class ClusterSimulator:
    """Fork/join execution of data-parallel work on the worker cores."""

    def __init__(
        self,
        n_workers: int = GAP9.cluster_worker_cores,
        timings: ClusterTimings | None = None,
    ) -> None:
        if n_workers < 1:
            raise PlatformModelError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.timings = timings or ClusterTimings()

    # ------------------------------------------------------------------
    # Evenly chunked steps (motion / observation / pose computation)
    # ------------------------------------------------------------------
    def simulate_even_step(
        self, particle_count: int, cycles_per_particle: float
    ) -> StepTrace:
        """Static block chunking of identical per-particle work."""
        if particle_count < 1:
            raise PlatformModelError("particle_count must be >= 1")
        chunks = np.array_split(np.arange(particle_count), self.n_workers)
        busy = np.array(
            [len(chunk) * cycles_per_particle for chunk in chunks], dtype=np.float64
        )
        makespan = (
            self.timings.fork_cycles + float(busy.max()) + self.timings.join_cycles
        )
        return StepTrace(core_busy_cycles=busy, makespan_cycles=makespan)

    # ------------------------------------------------------------------
    # Resampling (weight-dependent arrows per core, Fig. 4)
    # ------------------------------------------------------------------
    def simulate_resampling(
        self,
        weights: np.ndarray,
        u0: float,
        cycles_per_draw: float = 30.0,
        cycles_per_scan: float = 4.0,
    ) -> StepTrace:
        """Simulate the parallel wheel: partial sums + local draws.

        Each core first scans its block to build the local cumulative
        weights (``cycles_per_scan`` per particle — perfectly balanced),
        then resolves its share of arrows (``cycles_per_draw`` per drawn
        particle — balanced only if the weights are).  Two barriers
        separate the phases.
        """
        result = parallel_systematic_resample(weights, u0, self.n_workers)
        blocks = np.array_split(np.arange(len(np.asarray(weights))), self.n_workers)
        busy = np.zeros(self.n_workers, dtype=np.float64)
        for assignment, block in zip(result.assignments, blocks):
            busy[assignment.core] = (
                len(block) * cycles_per_scan + assignment.draw_count * cycles_per_draw
            )
        makespan = (
            self.timings.fork_cycles
            + 2 * self.timings.barrier_cycles
            + float(busy.max())
            + self.timings.join_cycles
        )
        return StepTrace(core_busy_cycles=busy, makespan_cycles=makespan)

    # ------------------------------------------------------------------
    # Structural speedup
    # ------------------------------------------------------------------
    def structural_speedup(
        self, particle_count: int, cycles_per_particle: float
    ) -> float:
        """Speedup of an evenly chunked step vs single-core execution.

        Shows the Fig. 10 shape: overhead-dominated at small N, saturating
        toward ``n_workers`` at large N.
        """
        serial = (
            self.timings.fork_cycles
            + particle_count * cycles_per_particle
            + self.timings.join_cycles
        )
        return serial / self.simulate_even_step(
            particle_count, cycles_per_particle
        ).makespan_cycles
