"""GAP9 execution-latency model for the parallel MCL (Tab. I / Fig. 10).

We cannot execute RISC-V machine code in this reproduction, so the paper's
own measurements serve as the calibration target: for each MCL step
(observation, motion, resampling, pose computation), core count (1 or 8)
and memory level (particles in L1 up to 1024, in L2 beyond), the measured
execution time is extremely well described by the affine law

    T(N) = a + b * N        (nanoseconds at 400 MHz)

where ``a`` is the fixed cluster-offload/fork-join overhead (~10 us) and
``b`` the per-particle cost, slightly larger when the particle buffers
live in L2.  Fitting ``a`` and ``b`` on the published N = 256 / 1024
columns reproduces **all 40 cells of Table I within <8 %**, and every
derived quantity follows: the 7x total speedup at high N (Fig. 10), the
0.2-30 ms latency span, the Table II execution times, and the minimum
real-time frequencies (12 MHz / 200 MHz).

On top of the four steps, every iteration pays a constant ~40 us pipeline
overhead "used for preprocessing the sensor data and transferring
information to the tasks" (paper Sec. IV-D), modelled explicitly.

Intermediate core counts (2-7) interpolate the parallel efficiency between
the calibrated 1- and 8-core points; they are model extrapolations, not
paper measurements, and are marked as such in the docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..common.errors import PlatformModelError
from .gap9 import GAP9

#: Particle count above which the paper stores particles in L2 (Tab. I
#: footnote: 4096 and 16384 are "stored in L2").
L1_PARTICLE_LIMIT = 1024

#: Constant per-iteration pipeline overhead at 400 MHz, nanoseconds.
PIPELINE_OVERHEAD_NS = 40_000.0

#: Real-time budget at the 15 Hz sensor rate, nanoseconds (paper: 67 ms).
REALTIME_BUDGET_NS = 67_000_000.0


class MclStep(Enum):
    """The four parallelized steps of the on-board MCL (Fig. 3)."""

    OBSERVATION = "observation"
    MOTION = "motion"
    RESAMPLING = "resampling"
    POSE_COMPUTATION = "pose_computation"


@dataclass(frozen=True)
class StepCostModel:
    """Calibrated affine cost T = a + b*N for one step, in ns @ 400 MHz."""

    overhead_1c_ns: float
    slope_1c_l1_ns: float
    slope_1c_l2_ns: float
    overhead_8c_ns: float
    slope_8c_l1_ns: float
    slope_8c_l2_ns: float


#: Constants fitted from Table I (see module docstring for the method).
_STEP_COSTS: dict[MclStep, StepCostModel] = {
    MclStep.OBSERVATION: StepCostModel(
        overhead_1c_ns=0.0,
        slope_1c_l1_ns=8518.0,
        slope_1c_l2_ns=8676.0,
        overhead_8c_ns=10_200.0,
        slope_8c_l1_ns=1273.0,
        slope_8c_l2_ns=1292.0,
    ),
    MclStep.MOTION: StepCostModel(
        overhead_1c_ns=8_900.0,
        slope_1c_l1_ns=2680.0,
        slope_1c_l2_ns=3000.0,
        overhead_8c_ns=11_571.0,
        slope_8c_l1_ns=346.0,
        slope_8c_l2_ns=387.0,
    ),
    MclStep.RESAMPLING: StepCostModel(
        overhead_1c_ns=10_240.0,
        slope_1c_l1_ns=151.0,
        slope_1c_l2_ns=556.0,
        overhead_8c_ns=12_629.0,
        slope_8c_l1_ns=72.0,
        slope_8c_l2_ns=105.0,
    ),
    MclStep.POSE_COMPUTATION: StepCostModel(
        overhead_1c_ns=9_958.0,
        slope_1c_l1_ns=594.0,
        slope_1c_l2_ns=775.0,
        overhead_8c_ns=10_567.0,
        slope_8c_l1_ns=76.0,
        slope_8c_l2_ns=98.4,
    ),
}


def particles_in_l2(particle_count: int) -> bool:
    """Whether the particle buffers exceed L1 residency (paper: N > 1024)."""
    return particle_count > L1_PARTICLE_LIMIT


class Gap9PerfModel:
    """Latency queries for the parallel MCL kernels on GAP9."""

    def __init__(self, frequency_hz: float = GAP9.max_frequency_hz) -> None:
        if not 1e6 <= frequency_hz <= GAP9.max_frequency_hz:
            raise PlatformModelError(
                f"frequency {frequency_hz/1e6:.1f} MHz outside GAP9's envelope"
            )
        self.frequency_hz = float(frequency_hz)

    # ------------------------------------------------------------------
    # Core quantities
    # ------------------------------------------------------------------
    def _scale(self) -> float:
        """Slow-down factor relative to the 400 MHz calibration."""
        return GAP9.max_frequency_hz / self.frequency_hz

    def step_time_ns(self, step: MclStep, particle_count: int, cores: int = 8) -> float:
        """Execution time of one MCL step, nanoseconds.

        ``cores`` of 1 and 8 are calibrated against Table I; 2-7 are a
        linear interpolation of overhead and parallel efficiency.
        """
        if particle_count < 1:
            raise PlatformModelError(f"particle_count must be >= 1, got {particle_count}")
        if not 1 <= cores <= GAP9.cluster_worker_cores:
            raise PlatformModelError(
                f"cores must be in 1..{GAP9.cluster_worker_cores}, got {cores}"
            )
        costs = _STEP_COSTS[step]
        l2 = particles_in_l2(particle_count)
        slope_1c = costs.slope_1c_l2_ns if l2 else costs.slope_1c_l1_ns
        slope_8c = costs.slope_8c_l2_ns if l2 else costs.slope_8c_l1_ns
        if cores == 1:
            overhead, slope = costs.overhead_1c_ns, slope_1c
        elif cores == GAP9.cluster_worker_cores:
            overhead, slope = costs.overhead_8c_ns, slope_8c
        else:
            # Interpolated efficiency: eff(8) = slope_1c / (8 * slope_8c).
            eff_8 = slope_1c / (GAP9.cluster_worker_cores * slope_8c)
            fraction = (cores - 1) / (GAP9.cluster_worker_cores - 1)
            eff = 1.0 + (eff_8 - 1.0) * fraction
            slope = slope_1c / (cores * eff)
            overhead = costs.overhead_1c_ns + (
                costs.overhead_8c_ns - costs.overhead_1c_ns
            ) * fraction
        return (overhead + slope * particle_count) * self._scale()

    def step_time_per_particle_ns(
        self, step: MclStep, particle_count: int, cores: int = 8
    ) -> float:
        """Per-particle step time — the exact quantity Table I reports."""
        return self.step_time_ns(step, particle_count, cores) / particle_count

    def update_time_ns(self, particle_count: int, cores: int = 8) -> float:
        """Full MCL iteration latency: four steps + pipeline overhead.

        The 40 us preprocessing/transfer overhead is constant in particle
        count and core usage (paper Sec. IV-D) but scales with the clock
        like the rest of the on-chip work.
        """
        steps = sum(
            self.step_time_ns(step, particle_count, cores) for step in MclStep
        )
        return steps + PIPELINE_OVERHEAD_NS * self._scale()

    # ------------------------------------------------------------------
    # Derived paper results
    # ------------------------------------------------------------------
    def step_speedup(self, step: MclStep, particle_count: int, cores: int = 8) -> float:
        """Parallel speedup of one step over 1 core (Fig. 10 series)."""
        return self.step_time_ns(step, particle_count, 1) / self.step_time_ns(
            step, particle_count, cores
        )

    def total_speedup(self, particle_count: int, cores: int = 8) -> float:
        """Speedup of the four-step sum (the orange Fig. 10 series)."""
        serial = sum(self.step_time_ns(step, particle_count, 1) for step in MclStep)
        parallel = sum(
            self.step_time_ns(step, particle_count, cores) for step in MclStep
        )
        return serial / parallel

    def is_realtime(self, particle_count: int, cores: int = 8) -> bool:
        """Whether one update fits the 15 Hz (67 ms) budget."""
        return self.update_time_ns(particle_count, cores) <= REALTIME_BUDGET_NS

    @staticmethod
    def min_realtime_frequency_hz(particle_count: int, cores: int = 8) -> float:
        """Lowest clock that still meets the 67 ms real-time budget.

        Latency scales inversely with frequency, so the bound is the
        400 MHz latency divided by the budget (paper: ~12 MHz for 1024
        particles, ~200 MHz for 16384).
        """
        at_max = Gap9PerfModel(GAP9.max_frequency_hz).update_time_ns(
            particle_count, cores
        )
        required = GAP9.max_frequency_hz * at_max / REALTIME_BUDGET_NS
        return min(max(required, 1e6), GAP9.max_frequency_hz)
