"""GAP9 SoC models: latency, power, memory capacity, cluster behaviour."""

from .gap9 import GAP9, Gap9Spec
from .memory import (
    MemoryBudget,
    MemoryLevel,
    cells_per_m2,
    map_bytes,
    max_particles,
    memory_budget,
    particle_bytes,
)
from .multicore import ClusterSimulator, ClusterTimings, StepTrace
from .perf import (
    L1_PARTICLE_LIMIT,
    PIPELINE_OVERHEAD_NS,
    REALTIME_BUDGET_NS,
    Gap9PerfModel,
    MclStep,
    particles_in_l2,
)
from .power import CALIBRATION_POINTS, Gap9PowerModel

__all__ = [
    "GAP9",
    "Gap9Spec",
    "MemoryBudget",
    "MemoryLevel",
    "cells_per_m2",
    "map_bytes",
    "max_particles",
    "memory_budget",
    "particle_bytes",
    "ClusterSimulator",
    "ClusterTimings",
    "StepTrace",
    "L1_PARTICLE_LIMIT",
    "PIPELINE_OVERHEAD_NS",
    "REALTIME_BUDGET_NS",
    "Gap9PerfModel",
    "MclStep",
    "particles_in_l2",
    "CALIBRATION_POINTS",
    "Gap9PowerModel",
]
