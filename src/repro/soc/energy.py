"""Mission-level energy analysis: what localization costs in flight time.

The paper's power claim (Sec. IV-E) is a snapshot: sensing + processing
draw 981 mW, ~7 % of the drone's power.  The adopter-relevant consequence
is **flight-time reduction**: the Crazyflie's 250 mAh 1-cell battery buys
a fixed energy budget, and every payload milliwatt shortens the hover.
This module turns the operating points into that currency and finds the
energy-optimal GAP9 clock for a required update rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import PlatformModelError
from ..board.system import system_power_budget
from .gap9 import GAP9
from .perf import Gap9PerfModel
from .power import Gap9PowerModel

#: Crazyflie 2.1 stock battery: 250 mAh at 3.7 V nominal.
BATTERY_CAPACITY_J = 0.250 * 3.7 * 3600.0

#: Usable fraction of the nominal capacity under flight discharge rates.
BATTERY_USABLE_FRACTION = 0.85


@dataclass(frozen=True)
class FlightTimeEstimate:
    """Hover endurance with and without the localization payload."""

    bare_minutes: float
    with_payload_minutes: float

    @property
    def reduction_minutes(self) -> float:
        return self.bare_minutes - self.with_payload_minutes

    @property
    def reduction_fraction(self) -> float:
        return self.reduction_minutes / self.bare_minutes


def flight_time_impact(
    gap9_frequency_hz: float = GAP9.max_frequency_hz,
    tof_sensor_count: int = 2,
) -> FlightTimeEstimate:
    """Hover-time cost of carrying the localization payload.

    The *electrical* cost only — the ~10 g of added mass also raises the
    hover power, which this model leaves to the motors' figure (the paper
    measures the full system, so the motor number already includes the
    mass effect).
    """
    budget = system_power_budget(gap9_frequency_hz, tof_sensor_count)
    usable = BATTERY_CAPACITY_J * BATTERY_USABLE_FRACTION
    bare_s = usable / budget.motors_w
    loaded_s = usable / budget.total_w
    return FlightTimeEstimate(
        bare_minutes=bare_s / 60.0, with_payload_minutes=loaded_s / 60.0
    )


def energy_per_update_j(
    frequency_hz: float, particle_count: int, cores: int = 8
) -> float:
    """GAP9 energy of one MCL update at an operating point."""
    return Gap9PowerModel().energy_per_update_j(frequency_hz, particle_count, cores)


def optimal_frequency_hz(
    particle_count: int,
    update_rate_hz: float = 15.0,
    cores: int = 8,
    candidates: tuple[float, ...] = (12e6, 50e6, 100e6, 200e6, 300e6, 400e6),
) -> float:
    """GAP9 clock minimizing average power at a required update rate.

    Average power of the duty-cycled workload: run power while computing,
    idle floor between updates.  Because the calibrated power curve has a
    positive floor, racing to idle at a clock *above* the real-time
    minimum can win — this picks the best catalogue point.
    """
    if update_rate_hz <= 0:
        raise PlatformModelError("update_rate_hz must be positive")
    period_s = 1.0 / update_rate_hz
    power_model = Gap9PowerModel()
    idle_w = 0.003  # deep-sleep retention floor
    best_frequency = None
    best_power = float("inf")
    for frequency in candidates:
        latency_s = (
            Gap9PerfModel(frequency).update_time_ns(particle_count, cores) * 1e-9
        )
        if latency_s > period_s:
            continue  # misses the deadline
        duty = latency_s / period_s
        average = duty * power_model.average_power_w(frequency) + (1 - duty) * idle_w
        if average < best_power:
            best_power = average
            best_frequency = frequency
    if best_frequency is None:
        raise PlatformModelError(
            f"no candidate clock meets {update_rate_hz} Hz with N={particle_count}"
        )
    return best_frequency
