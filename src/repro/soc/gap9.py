"""GAP9 SoC specification constants (paper Sec. III-B).

GAP9 is a RISC-V parallel ultra-low-power SoC derived from the open-source
Vega architecture [19]: a fabric controller (FC) plus a compute cluster of
9 cores — one orchestrator and 8 workers — with 128 kB of shared L1,
1.5 MB of interleaved L2, 2 MB of flash, adjustable frequency/voltage
domains, peak 400 MHz, and ~0.33 mW per GOP energy efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes in one binary kilobyte/megabyte (the paper counts in these units).
KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class Gap9Spec:
    """Static hardware parameters of the GAP9 SoC."""

    #: Worker cores in the compute cluster (one more orchestrates).
    cluster_worker_cores: int = 8
    #: Total cluster cores including the orchestrator.
    cluster_cores: int = 9
    #: Fabric-controller cores.
    fabric_cores: int = 1
    #: Shared L1 cluster memory, bytes.
    l1_bytes: int = 128 * KIB
    #: Interleaved L2 memory, bytes.
    l2_bytes: int = int(1.5 * MIB)
    #: Fabric-controller RAM, bytes.
    fc_ram_bytes: int = 64 * KIB
    #: On-chip flash, bytes.
    flash_bytes: int = 2 * MIB
    #: Peak clock of cluster and FC, Hz.
    max_frequency_hz: float = 400e6
    #: Minimum practical cluster clock used in the paper's Table II, Hz.
    min_frequency_hz: float = 12e6
    #: Energy efficiency headline figure, watts per GOP/s (0.33 mW/GOP).
    watts_per_gops: float = 0.33e-3

    @property
    def total_cores(self) -> int:
        """All RISC-V cores on the SoC (cluster + FC)."""
        return self.cluster_cores + self.fabric_cores


#: The canonical spec instance used across the platform models.
GAP9 = Gap9Spec()
