"""GAP9 power model calibrated on the paper's Table II operating points.

The paper measures the average power of the MCL workload at three cluster
clocks — 12 MHz (13 mW), 200 MHz (38 mW) and 400 MHz (61 mW) — under DVFS.
Average power is interpolated piecewise-linearly through those calibration
points (power is nearly affine in frequency at a fixed workload because
the voltage steps are folded into the measured points), which reproduces
Table II exactly and gives sensible values in between.

Energy per update combines this with the latency model: at a lower clock
one update burns less power for longer, and because of the static floor
the total energy can *fall* with frequency — the classic race-to-idle
trade-off the operating points expose.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import PlatformModelError
from .gap9 import GAP9
from .perf import Gap9PerfModel

#: (frequency Hz, average power W) measured by the paper (Table II).
CALIBRATION_POINTS: tuple[tuple[float, float], ...] = (
    (12e6, 0.013),
    (200e6, 0.038),
    (400e6, 0.061),
)


class Gap9PowerModel:
    """Average-power and per-update-energy queries for the MCL workload."""

    def __init__(self) -> None:
        freqs = np.array([point[0] for point in CALIBRATION_POINTS])
        powers = np.array([point[1] for point in CALIBRATION_POINTS])
        order = np.argsort(freqs)
        self._freqs = freqs[order]
        self._powers = powers[order]

    def average_power_w(self, frequency_hz: float) -> float:
        """Average power of the running MCL workload at a cluster clock.

        Clocks below the lowest calibration point extrapolate with the
        first segment's slope (floored at 1 mW); above the highest point
        the model refuses — GAP9 does not clock past 400 MHz.
        """
        if frequency_hz > GAP9.max_frequency_hz + 1e-6:
            raise PlatformModelError(
                f"{frequency_hz/1e6:.0f} MHz exceeds GAP9's 400 MHz ceiling"
            )
        if frequency_hz <= 0:
            raise PlatformModelError("frequency must be positive")
        if frequency_hz < self._freqs[0]:
            slope = (self._powers[1] - self._powers[0]) / (self._freqs[1] - self._freqs[0])
            value = self._powers[0] + slope * (frequency_hz - self._freqs[0])
            return float(max(value, 1e-3))
        return float(np.interp(frequency_hz, self._freqs, self._powers))

    def energy_per_update_j(
        self, frequency_hz: float, particle_count: int, cores: int = 8
    ) -> float:
        """Energy of one full MCL update at the given operating point."""
        power = self.average_power_w(frequency_hz)
        latency_s = (
            Gap9PerfModel(frequency_hz).update_time_ns(particle_count, cores) * 1e-9
        )
        return power * latency_s

    def operating_point(
        self, frequency_hz: float, particle_count: int, cores: int = 8
    ) -> dict[str, float]:
        """The full Table II row for one operating point."""
        latency_ms = (
            Gap9PerfModel(frequency_hz).update_time_ns(particle_count, cores) * 1e-6
        )
        return {
            "frequency_mhz": frequency_hz / 1e6,
            "particles": float(particle_count),
            "avg_power_mw": self.average_power_w(frequency_hz) * 1e3,
            "execution_time_ms": latency_ms,
            "energy_per_update_uj": self.energy_per_update_j(
                frequency_hz, particle_count, cores
            )
            * 1e6,
        }
