"""GAP9 memory-capacity model: the Fig. 9 particles-vs-map trade-off.

The two big MCL consumers are the particle buffers and the map
(Sec. III-C2).  Per-unit costs:

* particles: 32 B each in fp32 (four values, double buffered), 16 B in
  fp16 — provided by :class:`PrecisionMode`;
* map cells: 1 B occupancy + 4 B fp32 EDT = 5 B, or 1 B + 1 B quantized
  EDT = 2 B; at the paper's 0.05 m resolution one square metre is 400
  cells.

Fig. 9 asks: given a map of ``A`` m², how many particles still fit in L1
(128 kB) or L2 (1.5 MB)?  :func:`max_particles` answers exactly that, and
:func:`memory_budget` gives the full placement report used by the bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..common.errors import PlatformModelError
from ..common.precision import PrecisionMode
from ..maps.occupancy import PAPER_RESOLUTION
from .gap9 import GAP9


class MemoryLevel(Enum):
    """Which GAP9 memory the working set must fit."""

    L1 = "L1"
    L2 = "L2"

    @property
    def capacity_bytes(self) -> int:
        return GAP9.l1_bytes if self is MemoryLevel.L1 else GAP9.l2_bytes


def cells_per_m2(resolution_m: float = PAPER_RESOLUTION) -> float:
    """Number of grid cells covering one square metre."""
    if resolution_m <= 0:
        raise PlatformModelError(f"resolution must be positive, got {resolution_m}")
    return 1.0 / (resolution_m * resolution_m)


def map_bytes(
    area_m2: float,
    mode: PrecisionMode,
    resolution_m: float = PAPER_RESOLUTION,
) -> int:
    """Bytes to store occupancy + EDT for ``area_m2`` of map."""
    if area_m2 < 0:
        raise PlatformModelError(f"area must be non-negative, got {area_m2}")
    return int(round(area_m2 * cells_per_m2(resolution_m))) * mode.bytes_per_map_cell


def particle_bytes(count: int, mode: PrecisionMode) -> int:
    """Bytes for ``count`` double-buffered particles."""
    if count < 0:
        raise PlatformModelError(f"count must be non-negative, got {count}")
    return count * mode.bytes_per_particle


def max_particles(
    area_m2: float,
    mode: PrecisionMode,
    level: MemoryLevel,
    resolution_m: float = PAPER_RESOLUTION,
) -> int:
    """Largest particle population that fits next to the map (Fig. 9).

    Returns 0 when the map alone exceeds the level's capacity.
    """
    remaining = level.capacity_bytes - map_bytes(area_m2, mode, resolution_m)
    if remaining <= 0:
        return 0
    return remaining // mode.bytes_per_particle


@dataclass(frozen=True)
class MemoryBudget:
    """Placement report for a concrete (particles, map) working set."""

    particle_count: int
    area_m2: float
    mode: PrecisionMode
    particle_bytes: int
    map_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.particle_bytes + self.map_bytes

    def fits(self, level: MemoryLevel) -> bool:
        """Whether the whole working set fits the memory level."""
        return self.total_bytes <= level.capacity_bytes


def memory_budget(
    particle_count: int,
    area_m2: float,
    mode: PrecisionMode,
    resolution_m: float = PAPER_RESOLUTION,
) -> MemoryBudget:
    """Compute the working-set placement report."""
    return MemoryBudget(
        particle_count=particle_count,
        area_m2=area_m2,
        mode=mode,
        particle_bytes=particle_bytes(particle_count, mode),
        map_bytes=map_bytes(area_m2, mode, resolution_m),
    )
