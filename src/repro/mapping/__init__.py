"""Mapping and exploration: the paper's named future-work extensions."""

from .exploration import (
    ExplorationGoal,
    FrontierCluster,
    cluster_frontiers,
    frontier_mask,
    select_goal,
)
from .grid_mapper import GridMapper, MapperConfig, map_agreement
from .inverse_model import BeamUpdate, InverseModelConfig, beam_evidence, trace_beam_cells

__all__ = [
    "ExplorationGoal",
    "FrontierCluster",
    "cluster_frontiers",
    "frontier_mask",
    "select_goal",
    "GridMapper",
    "MapperConfig",
    "map_agreement",
    "BeamUpdate",
    "InverseModelConfig",
    "beam_evidence",
    "trace_beam_cells",
]
