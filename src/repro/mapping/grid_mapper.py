"""Log-odds occupancy grid mapping from multizone ToF frames.

Accumulates :mod:`inverse_model` beam evidence into a log-odds grid and
thresholds it into the library's three-state :class:`OccupancyGrid` — the
same format the localizer consumes, so a mapped environment can be used
for localization directly (mapping-then-localizing, the stepping stone to
the paper's exploration future work).

The mapper assumes poses are known (from mocap, or from MCL in a
map-sharing session); full SLAM is out of the reproduction's scope and
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError, MapError
from ..common.geometry import Pose2D
from ..maps.occupancy import PAPER_RESOLUTION, CellState, OccupancyGrid
from ..sensors.tof import TofFrame, ZoneStatus
from .inverse_model import InverseModelConfig, beam_evidence


@dataclass(frozen=True)
class MapperConfig:
    """Grid extent and classification thresholds."""

    width_m: float
    height_m: float
    resolution: float = PAPER_RESOLUTION
    origin_x: float = 0.0
    origin_y: float = 0.0
    #: Log-odds magnitude clamp (prevents saturation lock-in).
    l_clamp: float = 6.0
    #: Classification thresholds into FREE / OCCUPIED.
    l_free_threshold: float = -1.0
    l_occupied_threshold: float = 1.5
    inverse_model: InverseModelConfig = InverseModelConfig()
    #: Rows of the zone matrix used for mapping (middle rows, like MCL).
    beam_rows: tuple[int, ...] = (3, 4)

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ConfigurationError("mapper extent must be positive")
        if self.resolution <= 0:
            raise ConfigurationError("resolution must be positive")
        if self.l_clamp <= 0:
            raise ConfigurationError("l_clamp must be positive")
        if not self.l_free_threshold < self.l_occupied_threshold:
            raise ConfigurationError("free threshold must lie below occupied threshold")


class GridMapper:
    """Accumulates ToF frames into a log-odds occupancy map."""

    def __init__(self, config: MapperConfig) -> None:
        self.config = config
        self._rows = int(round(config.height_m / config.resolution))
        self._cols = int(round(config.width_m / config.resolution))
        self.log_odds = np.zeros((self._rows, self._cols), dtype=np.float64)
        self.frames_integrated = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def integrate_frame(self, frame: TofFrame, body_pose: Pose2D) -> int:
        """Integrate one zone-matrix frame taken from ``body_pose``.

        Returns the number of beams that contributed evidence.  Zones with
        error flags are skipped except OUT_OF_RANGE, which still clears
        free space along the beam (a miss is information too).
        """
        config = self.config
        rows = tuple(r for r in config.beam_rows if r < frame.zones_per_side)
        if not rows:
            raise ConfigurationError("beam_rows select nothing from this frame")
        sensor_x, sensor_y = body_pose.transform_point(frame.mount_x, frame.mount_y)
        used = 0
        sensor_max = 4.0
        for row in rows:
            for col in range(frame.zones_per_side):
                status = ZoneStatus(int(frame.status[row, col]))
                if status not in (ZoneStatus.VALID, ZoneStatus.OUT_OF_RANGE):
                    continue
                angle = float(frame.azimuths[col]) + body_pose.theta
                measured = float(frame.ranges_m[row, col])
                update = beam_evidence(
                    sensor_x, sensor_y, angle, measured, sensor_max,
                    config.resolution, config.origin_x, config.origin_y,
                    config.inverse_model,
                )
                self._apply(update.free_rows, update.free_cols, -config.inverse_model.l_free)
                self._apply(update.hit_rows, update.hit_cols, config.inverse_model.l_occupied)
                used += 1
        self.frames_integrated += 1
        return used

    def _apply(self, rows: np.ndarray, cols: np.ndarray, delta: float) -> None:
        inside = (rows >= 0) & (rows < self._rows) & (cols >= 0) & (cols < self._cols)
        rows = rows[inside]
        cols = cols[inside]
        self.log_odds[rows, cols] = np.clip(
            self.log_odds[rows, cols] + delta,
            -self.config.l_clamp,
            self.config.l_clamp,
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def occupancy_probabilities(self) -> np.ndarray:
        """Per-cell occupancy probability from the log odds."""
        return 1.0 - 1.0 / (1.0 + np.exp(self.log_odds))

    def to_occupancy_grid(self) -> OccupancyGrid:
        """Threshold the log odds into the three-state grid format."""
        config = self.config
        cells = np.full(self.log_odds.shape, int(CellState.UNKNOWN), dtype=np.uint8)
        cells[self.log_odds <= config.l_free_threshold] = int(CellState.FREE)
        cells[self.log_odds >= config.l_occupied_threshold] = int(CellState.OCCUPIED)
        return OccupancyGrid(
            cells, config.resolution, config.origin_x, config.origin_y
        )

    def coverage_fraction(self) -> float:
        """Fraction of cells classified as other than UNKNOWN."""
        grid = self.to_occupancy_grid()
        known = np.count_nonzero(grid.cells != CellState.UNKNOWN)
        return known / grid.cells.size


def map_agreement(estimated: OccupancyGrid, reference: OccupancyGrid) -> float:
    """Fraction of reference-known cells the estimate classifies identically.

    Cells UNKNOWN in either grid are excluded — this scores *classification
    agreement on jointly observed space*, the mapping quality metric used
    by the tests and the exploration demo.
    """
    if estimated.cells.shape != reference.cells.shape:
        raise MapError("grids must share a shape to compare")
    both_known = (estimated.cells != CellState.UNKNOWN) & (
        reference.cells != CellState.UNKNOWN
    )
    total = int(np.count_nonzero(both_known))
    if total == 0:
        return 0.0
    agree = int(np.count_nonzero(both_known & (estimated.cells == reference.cells)))
    return agree / total
