"""Inverse sensor model: what one ToF beam says about the map.

The paper's map is acquired "by manually measuring the maze objects"
(Sec. IV-A); building it from the drone's own multizone ToF data is the
natural next step (and a prerequisite for the exploration extension the
paper names as future work).  This module provides the per-beam update:
given a beam origin, direction and measured range, which cells become
more likely FREE and which more likely OCCUPIED.

The model is the standard log-odds formulation (Thrun et al.,
*Probabilistic Robotics*, the same reference the paper cites for the
beam-end-point model): cells traversed by the beam before the hit get a
free-space decrement, cells in a small window around the measured range
get an occupied increment, cells beyond stay untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError


@dataclass(frozen=True)
class InverseModelConfig:
    """Log-odds increments of the beam update."""

    #: Log-odds added to cells in the hit window (evidence of occupancy).
    l_occupied: float = 0.85
    #: Log-odds subtracted from traversed cells (evidence of free space).
    l_free: float = 0.4
    #: Half-width of the hit window around the measured range, metres.
    hit_window_m: float = 0.05
    #: Ranges at/above this fraction of the sensor limit carry no hit
    #: evidence (out-of-range readings only clear free space).
    max_range_fraction: float = 0.95
    #: Half-angle of one zone's acceptance cone, radians.  A VL53L5CX
    #: zone spans 45°/8 = 5.6° of the FoV — its photons cover a *cone*,
    #: so free-space evidence must widen with range or mapped free space
    #: degenerates into single-cell stripes between ray samples.
    cone_half_angle_rad: float = math.radians(45.0 / 8 / 2)
    #: Cap on sub-rays used to fill the cone (compute bound).
    max_sub_rays: int = 7

    def __post_init__(self) -> None:
        if self.l_occupied <= 0 or self.l_free <= 0:
            raise ConfigurationError("log-odds increments must be positive")
        if self.hit_window_m <= 0:
            raise ConfigurationError("hit window must be positive")
        if not 0.0 < self.max_range_fraction <= 1.0:
            raise ConfigurationError("max_range_fraction must be in (0, 1]")
        if self.cone_half_angle_rad < 0:
            raise ConfigurationError("cone half-angle must be non-negative")
        if self.max_sub_rays < 1:
            raise ConfigurationError("need at least one sub-ray")


@dataclass
class BeamUpdate:
    """Cell-index evidence produced by one beam."""

    free_rows: np.ndarray
    free_cols: np.ndarray
    hit_rows: np.ndarray
    hit_cols: np.ndarray


def trace_beam_cells(
    origin_x: float,
    origin_y: float,
    angle: float,
    length_m: float,
    resolution: float,
    grid_origin_x: float,
    grid_origin_y: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Cells traversed by a segment, sampled at half-cell steps.

    Returns unique (rows, cols) along the segment, unclipped — the caller
    applies bounds.  Half-cell sampling guarantees no traversed cell is
    skipped at any angle (sampling step < cell edge / sqrt(2) fails only
    beyond 45° which half-cell covers).
    """
    if length_m <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    steps = max(int(math.ceil(length_m / (resolution * 0.5))), 1)
    distances = np.linspace(0.0, length_m, steps + 1)
    xs = origin_x + np.cos(angle) * distances
    ys = origin_y + np.sin(angle) * distances
    cols = np.floor((xs - grid_origin_x) / resolution).astype(np.int64)
    rows = np.floor((ys - grid_origin_y) / resolution).astype(np.int64)
    # Deduplicate while keeping it vectorized: pack into one key.
    keys = rows * (1 << 32) + cols
    __, first = np.unique(keys, return_index=True)
    order = np.sort(first)
    return rows[order], cols[order]


def _cone_sub_angles(
    angle: float, length_m: float, resolution: float, config: InverseModelConfig
) -> np.ndarray:
    """Sub-ray angles covering the zone's acceptance cone.

    Enough sub-rays that adjacent traces at the far end of the beam are
    at most one cell apart, capped at ``max_sub_rays``.
    """
    if config.cone_half_angle_rad == 0.0 or length_m <= 0.0:
        return np.array([angle])
    arc = 2.0 * config.cone_half_angle_rad * length_m
    count = int(math.ceil(arc / resolution)) + 1
    count = min(max(count, 1), config.max_sub_rays)
    if count == 1:
        return np.array([angle])
    return angle + np.linspace(
        -config.cone_half_angle_rad, config.cone_half_angle_rad, count
    )


def _dedupe(rows: np.ndarray, cols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    keys = rows * (1 << 32) + cols
    __, first = np.unique(keys, return_index=True)
    return rows[first], cols[first]


def beam_evidence(
    origin_x: float,
    origin_y: float,
    angle: float,
    measured_range: float,
    sensor_max_range: float,
    resolution: float,
    grid_origin_x: float,
    grid_origin_y: float,
    config: InverseModelConfig,
) -> BeamUpdate:
    """Split one zone measurement into free-space and hit-window cells.

    Free-space evidence covers the zone's acceptance cone (sub-ray fan);
    hit evidence covers the arc of the cone at the measured range.
    """
    if measured_range < 0:
        raise ConfigurationError(f"range must be non-negative, got {measured_range}")
    out_of_range = measured_range >= config.max_range_fraction * sensor_max_range
    free_length = max(
        measured_range - (0.0 if out_of_range else config.hit_window_m), 0.0
    )
    sub_angles = _cone_sub_angles(angle, free_length, resolution, config)

    free_rows_parts = []
    free_cols_parts = []
    for sub_angle in sub_angles:
        rows, cols = trace_beam_cells(
            origin_x, origin_y, float(sub_angle), free_length, resolution,
            grid_origin_x, grid_origin_y,
        )
        free_rows_parts.append(rows)
        free_cols_parts.append(cols)
    free_rows = np.concatenate(free_rows_parts) if free_rows_parts else np.empty(0, np.int64)
    free_cols = np.concatenate(free_cols_parts) if free_cols_parts else np.empty(0, np.int64)
    if free_rows.size:
        free_rows, free_cols = _dedupe(free_rows, free_cols)

    if out_of_range:
        return BeamUpdate(
            free_rows, free_cols,
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
        )

    hit_lo = max(measured_range - config.hit_window_m, 0.0)
    hit_span = 2 * config.hit_window_m
    hit_rows_parts = []
    hit_cols_parts = []
    for sub_angle in sub_angles:
        hit_x = origin_x + math.cos(float(sub_angle)) * hit_lo
        hit_y = origin_y + math.sin(float(sub_angle)) * hit_lo
        rows, cols = trace_beam_cells(
            hit_x, hit_y, float(sub_angle), hit_span, resolution,
            grid_origin_x, grid_origin_y,
        )
        hit_rows_parts.append(rows)
        hit_cols_parts.append(cols)
    hit_rows = np.concatenate(hit_rows_parts)
    hit_cols = np.concatenate(hit_cols_parts)
    if hit_rows.size:
        hit_rows, hit_cols = _dedupe(hit_rows, hit_cols)
    # Hit cells must not also carry free evidence from a neighbouring
    # sub-ray grazing past the surface.
    if hit_rows.size and free_rows.size:
        hit_keys = set((hit_rows * (1 << 32) + hit_cols).tolist())
        free_keys = free_rows * (1 << 32) + free_cols
        keep = np.array([k not in hit_keys for k in free_keys.tolist()])
        free_rows = free_rows[keep]
        free_cols = free_cols[keep]
    return BeamUpdate(free_rows, free_cols, hit_rows, hit_cols)
