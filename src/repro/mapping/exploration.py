"""Frontier-based exploration — the paper's named future work.

"Future works will extend the proposed system to applications such as
path planning and exploration" (paper Sec. V).  This module implements
the classic frontier pipeline on the library's substrates:

1. **Frontier detection** — FREE cells adjacent to UNKNOWN cells in the
   current (partially mapped) grid are the information boundary;
2. **Clustering** — connected frontier cells group into reachable targets;
3. **Goal selection** — nearest-centroid-first with a minimum cluster
   size, planned with the clearance-aware A* from ``repro.maps.planning``.

Combined with :class:`~repro.mapping.grid_mapper.GridMapper`, this closes
the explore-map-localize loop demonstrated in
``examples/exploration_demo.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..common.errors import MapError
from ..maps.occupancy import CellState, OccupancyGrid
from ..maps.planning import clearance_map, plan_route


def frontier_mask(grid: OccupancyGrid) -> np.ndarray:
    """Boolean mask of frontier cells: FREE with a 4-adjacent UNKNOWN."""
    free = grid.cells == CellState.FREE
    unknown = grid.cells == CellState.UNKNOWN
    neighbour_unknown = np.zeros_like(unknown)
    neighbour_unknown[1:, :] |= unknown[:-1, :]
    neighbour_unknown[:-1, :] |= unknown[1:, :]
    neighbour_unknown[:, 1:] |= unknown[:, :-1]
    neighbour_unknown[:, :-1] |= unknown[:, 1:]
    return free & neighbour_unknown


@dataclass
class FrontierCluster:
    """One connected group of frontier cells."""

    rows: np.ndarray
    cols: np.ndarray

    @property
    def size(self) -> int:
        return int(self.rows.size)

    def centroid_cell(self) -> tuple[int, int]:
        """The member cell closest to the cluster's mean (always on the
        frontier, unlike the raw mean)."""
        mean_row = float(self.rows.mean())
        mean_col = float(self.cols.mean())
        index = int(
            np.argmin((self.rows - mean_row) ** 2 + (self.cols - mean_col) ** 2)
        )
        return int(self.rows[index]), int(self.cols[index])


def cluster_frontiers(grid: OccupancyGrid, min_size: int = 3) -> list[FrontierCluster]:
    """Group frontier cells into 8-connected clusters of at least ``min_size``."""
    if min_size < 1:
        raise MapError(f"min_size must be >= 1, got {min_size}")
    mask = frontier_mask(grid)
    seen = np.zeros_like(mask)
    clusters: list[FrontierCluster] = []
    for start in zip(*np.nonzero(mask)):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        members = []
        while stack:
            row, col = stack.pop()
            members.append((row, col))
            for d_row in (-1, 0, 1):
                for d_col in (-1, 0, 1):
                    nxt = (row + d_row, col + d_col)
                    if (
                        0 <= nxt[0] < grid.rows
                        and 0 <= nxt[1] < grid.cols
                        and mask[nxt]
                        and not seen[nxt]
                    ):
                        seen[nxt] = True
                        stack.append(nxt)
        if len(members) >= min_size:
            rows = np.array([m[0] for m in members])
            cols = np.array([m[1] for m in members])
            clusters.append(FrontierCluster(rows, cols))
    return clusters


@dataclass
class ExplorationGoal:
    """A selected frontier target and the route to it."""

    target_xy: tuple[float, float]
    route: list[tuple[float, float]]
    cluster_size: int


def select_goal(
    grid: OccupancyGrid,
    from_xy: tuple[float, float],
    clearance_m: float = 0.15,
    min_cluster_size: int = 3,
    exclude_near: list[tuple[float, float]] | None = None,
    exclude_radius_m: float = 0.3,
) -> ExplorationGoal | None:
    """Pick the nearest reachable frontier cluster and plan a route to it.

    Returns None when exploration is complete (no reachable frontier) —
    either the map is closed or remaining frontiers are unreachable at the
    requested clearance.  Unreachable clusters are skipped, not fatal.

    ``exclude_near`` blacklists previously attempted targets: clusters
    whose centroid lies within ``exclude_radius_m`` of a blacklisted point
    are skipped.  Exploration loops use this to escape frontiers the
    sensor geometry can never clear (e.g. slivers behind wall stubs).
    """
    clusters = cluster_frontiers(grid, min_cluster_size)
    if exclude_near:
        def blacklisted(cluster: FrontierCluster) -> bool:
            row, col = cluster.centroid_cell()
            x, y = grid.grid_to_world(row, col)
            return any(
                math.hypot(float(x) - ex, float(y) - ey) < exclude_radius_m
                for ex, ey in exclude_near
            )

        clusters = [c for c in clusters if not blacklisted(c)]
    if not clusters:
        return None
    traversable = clearance_map(grid, clearance_m)

    def snapped_target(cluster: FrontierCluster) -> tuple[float, float] | None:
        """Nearest traversable cell to the cluster centroid."""
        row, col = cluster.centroid_cell()
        best = None
        best_dist = math.inf
        reach = 8  # cells
        for d_row in range(-reach, reach + 1):
            for d_col in range(-reach, reach + 1):
                r, c = row + d_row, col + d_col
                if 0 <= r < grid.rows and 0 <= c < grid.cols and traversable[r, c]:
                    dist = d_row * d_row + d_col * d_col
                    if dist < best_dist:
                        best_dist = dist
                        best = (r, c)
        if best is None:
            return None
        x, y = grid.grid_to_world(best[0], best[1])
        return (float(x), float(y))

    ordered = sorted(
        clusters,
        key=lambda cluster: (
            (grid.grid_to_world(*cluster.centroid_cell())[0] - from_xy[0]) ** 2
            + (grid.grid_to_world(*cluster.centroid_cell())[1] - from_xy[1]) ** 2
        ),
    )
    for cluster in ordered:
        target = snapped_target(cluster)
        if target is None:
            continue
        try:
            route = plan_route(grid, from_xy, target, clearance_m)
        except MapError:
            continue
        return ExplorationGoal(
            target_xy=target, route=route, cluster_size=cluster.size
        )
    return None
