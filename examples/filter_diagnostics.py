"""Filter-health view of global localization: watching the modes compete.

Fig. 1 of the paper shows the estimate starting in the wrong maze; this
example shows the *mechanism*: the particle belief splits into spatial
modes (one per plausible maze), the observation stream shifts weight
between them, and at some instant the belief collapses to a single mode —
after which the usual convergence metrics take over.

Run with:  python examples/filter_diagnostics.py
"""

from repro import MclConfig, MonteCarloLocalization, build_drone_maze_world
from repro.dataset import load_sequence
from repro.eval import trace_filter_health
from repro.eval.diagnostics import belief_modes
from repro.viz import format_table


def main() -> None:
    world = build_drone_maze_world()
    sequence = load_sequence(0, world)
    config = MclConfig(particle_count=4096)
    mcl = MonteCarloLocalization(world.grid, config, seed=2)

    print(f"Tracing filter health on {sequence.name} (N={config.particle_count})\n")
    trace = trace_filter_health(world.grid, sequence, mcl)

    rows = []
    stride = max(len(trace.timestamps) // 14, 1)
    for i in range(0, len(trace.timestamps), stride):
        rows.append(
            [
                f"{trace.timestamps[i]:5.1f}",
                f"{trace.ess[i]:7.0f}",
                f"{trace.position_std[i]:6.2f} m",
                f"{trace.yaw_std[i]:5.2f} rad",
                trace.mode_count[i],
                f"{trace.top_mode_share[i]:5.1%}",
            ]
        )
    print(
        format_table(
            ["t (s)", "ESS", "pos std", "yaw std", "modes", "top share"],
            rows,
            title="Belief health over the run",
        )
    )

    collapse = trace.collapse_time(share_threshold=0.9)
    if collapse is not None:
        print(f"\nmode collapse (top mode >= 90 % of weight) at t = {collapse:.1f} s")

    print("\nfinal belief modes (location of each, with weight share):")
    final_modes = belief_modes(mcl)
    for mode in final_modes:
        placement = world.maze_containing(mode.center_x, mode.center_y)
        where = placement.name if placement else "outside mazes"
        print(
            f"  ({mode.center_x:.2f}, {mode.center_y:.2f})  share {mode.weight_share:5.1%}"
            f"  particles {mode.particle_count:5d}  -> {where}"
        )


if __name__ == "__main__":
    main()
