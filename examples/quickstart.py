"""Quickstart: localize a simulated nano-UAV in the drone maze.

This is the minimal closed loop of the library:

1. build the paper's 31.2 m² evaluation world,
2. fly a short scripted route with the simulated Crazyflie (drifting
   odometry + two multizone ToF sensors),
3. run Monte Carlo localization with the paper's parameters,
4. print the convergence and accuracy metrics.

Run with:  python examples/quickstart.py
"""

from repro import MclConfig, build_drone_maze_world
from repro.dataset import load_sequence
from repro.eval import run_localization


def main() -> None:
    print("Building the evaluation world (main maze + 3 artificial mazes)...")
    world = build_drone_maze_world()
    print(
        f"  structured area: {world.grid.structured_area_m2():.1f} m2 at "
        f"{world.grid.resolution} m/cell"
    )

    print("Loading sequence 0 (generated and cached on first use)...")
    sequence = load_sequence(0, world)
    print(f"  {sequence.name}: {len(sequence)} frames, {sequence.duration_s:.1f} s")

    config = MclConfig(particle_count=4096)  # the paper's default parameters
    print(f"Running MCL: N={config.particle_count}, variant={config.variant_label}")
    result = run_localization(world.grid, sequence, config, seed=0)

    metrics = result.metrics
    print()
    print(f"converged        : {metrics.converged}")
    if metrics.converged:
        print(f"convergence time : {metrics.convergence_time_s:.1f} s")
        print(f"ATE (mean)       : {metrics.ate_mean_m:.3f} m   <- paper: ~0.15 m")
        print(f"ATE (max)        : {metrics.ate_max_m:.3f} m")
        print(f"success          : {metrics.success}  (ATE stayed under 1 m)")


if __name__ == "__main__":
    main()
