"""Serve a mixed drone fleet online: create, step, query, migrate, close.

Demonstrates the serving layer end to end:

1. declare a mixed-family fleet in one string and open one live
   localization session per drone;
2. stream observation frames in slices (submit + flush), the scheduler
   packing every pending session into shared stacked backend calls;
3. query a session mid-flight (cursor, live estimate, metrics so far);
4. snapshot it, migrate the bytes into a *second* manager, and let both
   copies finish — their traces match bit for bit;
5. close everything and print the per-session outcomes.

Run with::

    PYTHONPATH=src python examples/serve_fleet_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.serve import SessionManager

FLEET = "office:1:flight_s=12@fp32@64*2,corridor:2:flight_s=12@fp16qm@96*2~2"


def main() -> None:
    manager = SessionManager(backend="batched")
    session_ids = manager.create_fleet(FLEET)
    print(f"fleet open: {len(session_ids)} sessions")

    # Stream the first 40 frames in 8-frame slices.
    for _ in range(5):
        manager.submit_all(8)
        report = manager.flush()
        print(
            f"flush: {report.frames} frames in {report.ticks} ticks, "
            f"{report.updates} gated updates"
        )

    probe = session_ids[0]
    status = manager.query(probe)
    print(
        f"\n{probe}: frame {status.cursor}/{status.frames_total}, "
        f"{status.update_count} updates, estimate=({status.estimate.x:.2f}, "
        f"{status.estimate.y:.2f}, {status.estimate.theta:.2f})"
    )

    # Snapshot the probe session and migrate it to a second manager.
    blob = manager.snapshot(probe)
    print(f"snapshot: {len(blob)} bytes (byte-stable, content-addressable)")
    migrated = SessionManager(backend="batched")
    migrated.restore(blob)

    # Finish both copies; migration must be invisible.
    manager.run_to_completion()
    migrated.run_to_completion()
    original = manager.close(probe)
    twin = migrated.close(probe)
    identical = np.array_equal(
        original.trace.estimate_trace, twin.trace.estimate_trace
    )
    print(f"migrated copy bitwise-identical: {identical}")

    for session_id in session_ids[1:]:
        result = manager.close(session_id)
        metrics = result.metrics
        outcome = (
            f"ate={metrics.ate_mean_m:.3f} m"
            if metrics is not None and metrics.converged
            else "did not converge"
        )
        print(f"{session_id}: {result.trace.update_count} updates, {outcome}")


if __name__ == "__main__":
    main()
