"""Ablation demo: a sigma-sweep campaign over two scenario families.

The paper's accuracy results are ablations over the filter's
configuration.  This demo runs one such study through the campaign
layer: the observation-noise width ``sigma_obs`` swept over three values
(the paper's 2.0 in the middle) across two procedural worlds, declared
as config specs (``variant[+key=value...]``) on the campaign's variant
axis.

What to notice:

1. the default spec ``fp32`` and the explicit ``fp32+sigma=2.0`` are the
   *same configuration* — the spec canonicalizes, so they share one
   campaign cell and one config fingerprint;
2. ablated cells are content-keyed by config fingerprint: rerunning with
   ``resume=True`` skips everything, and the store stays byte-stable
   across backends and job counts;
3. the report reads straight from the store — no recomputation.

The CLI equivalent:

    repro campaign run sigma-study --scenarios office:3,corridor:2 \\
        --variants fp32 --ablate sigma=1.0,2.0,4.0 --particles 64

Run with:  PYTHONPATH=src python examples/ablation_demo.py
"""

from repro.core.config import ConfigSpec
from repro.eval import (
    CampaignSpec,
    aggregate_report,
    run_campaign,
)
from repro.viz import format_matrix

#: The ablation axis: sigma_obs values around the paper's 2.0 default.
SIGMAS = (1.0, 2.0, 4.0)


def main() -> None:
    variants = tuple(
        ConfigSpec.parse("fp32").with_override("sigma", sigma).id
        for sigma in SIGMAS
    )
    spec = CampaignSpec(
        name="sigma-study",
        # flight_s keeps the simulated flights short so the demo runs in
        # about a minute; drop the override for full 60 s evaluations.
        scenarios=("office:3:flight_s=15.0", "corridor:2:flight_s=15.0"),
        variants=variants,
        particle_counts=(64,),
        seeds=(0, 1),
    )
    print(f"campaign {spec.name!r}: {len(spec.cells())} cells")
    print(f"  scenarios : {', '.join(spec.scenarios)}")
    print(f"  configs   : {', '.join(spec.variants)}")
    for variant in spec.variants:
        config_spec = ConfigSpec.parse(variant)
        print(
            f"    {variant:24s} fingerprint={config_spec.fingerprint()} "
            f"(default variant: {config_spec.is_default})"
        )
    print()

    summary = run_campaign(spec, progress=lambda line: print(f"  {line}"))
    print(f"executed {summary.executed} cells into {summary.store_root}")

    # Ablated cells resume by fingerprinted content key, exactly like
    # paper-variant cells.
    resumed = run_campaign(spec, resume=True)
    print(f"resume: {resumed.skipped} skipped, {resumed.executed} executed")
    print()

    report = aggregate_report(spec.name)
    for scenario in spec.scenarios:
        cells = {}
        for (variant, count), aggregate in report[scenario].items():
            ate = aggregate["mean_ate_m"]
            rate = aggregate["success_rate"]
            cells[(variant, "ATE (m)")] = "n/a" if ate is None else f"{ate:.3f}"
            cells[(variant, "success")] = (
                "n/a" if rate is None else f"{100 * rate:.0f}%"
            )
        print(
            format_matrix(
                "config",
                list(spec.variants),
                ["ATE (m)", "success"],
                cells,
                title=f"sigma ablation — {scenario}  [N=64, 2 seeds]",
                footnote="the paper's sigma_obs=2.0 is the `fp32` row",
            )
        )
        print()


if __name__ == "__main__":
    main()
