"""Infrastructure-less MCL vs infrastructure baselines.

The paper's positioning argument (Sec. II / IV-B): UWB localization needs
pre-installed anchors and still achieves 0.22-0.28 m mean error, while
dead reckoning drifts unboundedly; map-based MCL needs no infrastructure
and reaches ~0.15 m.  This example runs all three on the same sequence.

Run with:  python examples/uwb_comparison.py
"""

from repro import MclConfig, build_drone_maze_world
from repro.baselines import run_dead_reckoning, run_uwb_baseline
from repro.dataset import load_sequence
from repro.eval import run_localization
from repro.viz import format_table


def main() -> None:
    world = build_drone_maze_world()
    sequence = load_sequence(2, world)
    print(f"Comparing localizers on {sequence.name} ({sequence.duration_s:.0f} s)\n")

    mcl = run_localization(
        world.grid, sequence, MclConfig(particle_count=4096), seed=0
    )
    uwb = run_uwb_baseline(
        sequence.ground_truth[:, :2],
        sequence.timestamps,
        volume_size=(world.grid.width_m, world.grid.height_m),
        seed=0,
    )
    reckoning = run_dead_reckoning(sequence)

    mcl_err = (
        f"{mcl.metrics.ate_mean_m:.3f} m" if mcl.metrics.converged else "no convergence"
    )
    rows = [
        ["MCL (this work)", "none", mcl_err, "yes"],
        ["UWB EKF (cf. [6],[7])", "4 anchors", f"{uwb.mean_error_m:.3f} m", "no"],
        [
            "dead reckoning",
            "none",
            f"{reckoning.mean_error_m:.3f} m (final {reckoning.final_error_m:.2f} m)",
            "no",
        ],
    ]
    print(
        format_table(
            ["method", "infrastructure", "mean error", "estimates yaw"],
            rows,
            footnote="published UWB references: 0.22 m [7], 0.28 m [6]; paper MCL: 0.15 m",
        )
    )

    print("\nDrift over time (dead reckoning position error):")
    quarter = len(reckoning.position_errors) // 4
    for i in range(0, len(reckoning.position_errors), quarter):
        t = reckoning.timestamps[i]
        print(f"  t={t:5.1f} s: {reckoning.position_errors[i]:.3f} m")


if __name__ == "__main__":
    main()
