"""Memory-precision trade-offs: fp32 vs quantized map vs fp16 particles.

Reproduces the paper's Sec. IV-C result at single-sequence scale: the
8-bit quantized EDT (fp32qm) and the additional half-precision particles
(fp16qm) cut the memory footprint 2.5x / 5x on the map and 2x on the
particles **without losing accuracy**.

Run with:  python examples/precision_tradeoffs.py
"""

from repro import MclConfig, build_drone_maze_world
from repro.dataset import load_sequence
from repro.eval import run_localization
from repro.soc.memory import memory_budget
from repro.viz import format_table


def main() -> None:
    world = build_drone_maze_world()
    sequence = load_sequence(1, world)
    area = world.grid.structured_area_m2()
    particle_count = 4096

    rows = []
    for variant in ("fp32", "fp32qm", "fp16qm"):
        config = MclConfig(particle_count=particle_count).with_variant(variant)
        result = run_localization(world.grid, sequence, config, seed=0)
        metrics = result.metrics
        budget = memory_budget(particle_count, area, config.precision)
        rows.append(
            [
                variant,
                f"{metrics.ate_mean_m:.3f} m" if metrics.converged else "n/a",
                f"{metrics.convergence_time_s:.1f} s" if metrics.converged else "n/a",
                "yes" if metrics.success else "no",
                f"{budget.map_bytes / 1024:.1f} kB",
                f"{budget.particle_bytes / 1024:.1f} kB",
            ]
        )

    print(
        format_table(
            ["variant", "ATE", "convergence", "success", "map memory", "particle memory"],
            rows,
            title=f"Precision trade-offs on {sequence.name} (N={particle_count}, "
            f"{area:.1f} m2 map)",
            footnote="map: 5 B/cell fp32 vs 2 B/cell quantized; particles: 32 B fp32 vs 16 B fp16",
        )
    )

    # The quantization error that buys the 2.5x map saving:
    step_m = 1.5 / 255
    print(
        f"\nquantized EDT resolution: {step_m * 1000:.1f} mm per code "
        f"(max error {step_m / 2 * 1000:.1f} mm) — negligible vs the 50 mm map cells,"
    )
    print("which is why accuracy does not degrade (paper Sec. IV-C).")


if __name__ == "__main__":
    main()
