"""Adaptive MCL: kidnapped-robot recovery and KLD particle sizing.

Two extensions on top of the paper's fixed filter, with direct embedded
payoffs (Table I latency is linear in N):

* the **augmented** filter detects a likelihood collapse (here: a
  simulated kidnap mid-flight) and injects uniform particles to recover —
  the fixed filter stays lost;
* **KLD sizing** shows how few particles a converged belief actually
  needs, quantifying the compute headroom after global localization.

Run with:  python examples/adaptive_mcl.py
"""

from repro import MclConfig, build_drone_maze_world
from repro.core.adaptive import AdaptiveConfig, AdaptiveMcl
from repro.core.mcl import MonteCarloLocalization
from repro.dataset import load_sequence
from repro.soc.perf import Gap9PerfModel


def run_with_kidnap(mcl, sequence, kidnap_at_s: float):
    """Replay a sequence, teleporting the data source mid-flight.

    The kidnap is simulated by replaying the sequence from its start
    while the filter believes it is somewhere else: at ``kidnap_at_s`` we
    stop feeding odometry increments for 2 s (the filter coasts) and then
    resume from a later point of the flight — odometry and observations
    no longer match the filter's belief.
    """
    steps = list(sequence.steps())
    skip_from = next(
        i for i, s in enumerate(steps) if s.timestamp >= kidnap_at_s
    )
    skip_to = min(skip_from + 150, len(steps) - 1)  # jump ~10 s of flight
    errors = []
    previous_odometry = steps[0].odometry
    index = 0
    while index < len(steps):
        step = steps[index]
        if index == skip_from:
            index = skip_to  # the teleport: no odometry for the jump
            previous_odometry = steps[index].odometry
            continue
        increment = previous_odometry.between(step.odometry)
        previous_odometry = step.odometry
        mcl.add_odometry(increment)
        mcl.process(step.frames)
        errors.append(
            (step.timestamp, mcl.estimate.pose.distance_to(step.ground_truth))
        )
        index += 1
    return errors


def main() -> None:
    world = build_drone_maze_world()
    sequence = load_sequence(4, world)  # the longest flight
    config = MclConfig(particle_count=4096)

    print("== Kidnapped-robot recovery ==")
    fixed = MonteCarloLocalization(world.grid, config, seed=0)
    augmented = AdaptiveMcl(
        world.grid, config, seed=0, adaptive=AdaptiveConfig(max_injection_fraction=0.15)
    )
    errors_fixed = run_with_kidnap(fixed, sequence, kidnap_at_s=35.0)
    errors_augmented = run_with_kidnap(augmented, sequence, kidnap_at_s=35.0)

    final_fixed = errors_fixed[-1][1]
    final_augmented = errors_augmented[-1][1]
    print(f"  final error, fixed filter     : {final_fixed:.2f} m")
    print(f"  final error, augmented filter : {final_augmented:.2f} m")
    print("  (the augmented filter re-injects particles when the observation")
    print("   likelihood collapses, so it can re-localize after the kidnap)")

    print("\n== KLD particle sizing ==")
    adaptive = AdaptiveMcl(world.grid, config, seed=1)
    uniform_bins = adaptive.occupied_bin_count()
    uniform_need = adaptive.recommended_particle_count()
    # Converge by replaying the sequence start.
    previous = None
    for step in list(sequence.steps())[:400]:
        if previous is not None:
            adaptive.add_odometry(previous.between(step.odometry))
            adaptive.process(step.frames)
        previous = step.odometry
    converged_bins = adaptive.occupied_bin_count()
    converged_need = adaptive.recommended_particle_count()

    perf = Gap9PerfModel()
    t_full = perf.update_time_ns(config.particle_count, 8) / 1e6
    t_small = perf.update_time_ns(max(converged_need, 64), 8) / 1e6
    print(f"  uniform belief  : {uniform_bins:5d} bins -> {uniform_need} particles")
    print(f"  converged belief: {converged_bins:5d} bins -> {converged_need} particles")
    print(
        f"  GAP9 update time: {t_full:.2f} ms at N={config.particle_count} -> "
        f"{t_small:.2f} ms after KLD shrink"
    )


if __name__ == "__main__":
    main()
