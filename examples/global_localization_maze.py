"""The Fig. 1 scenario: global localization starting in the wrong maze.

The paper's Fig. 1 shows the estimated pose starting off in the wrong
maze (the combined map contains three artificial mazes structurally
similar to the real one) and snapping to the correct pose once enough
observations accumulate.

This example reproduces that experiment: it tracks which maze the
estimate sits in over time, renders the ground-truth and estimated
trajectories over the map, and exports both as CSV.

Run with:  python examples/global_localization_maze.py
"""

import numpy as np

from repro import MclConfig, build_drone_maze_world
from repro.dataset import load_sequence
from repro.eval import run_localization
from repro.viz import render_map_with_path, results_directory, write_csv


def main() -> None:
    world = build_drone_maze_world()
    sequence = load_sequence(0, world)
    config = MclConfig(particle_count=4096)

    print(f"Global localization on {sequence.name} with N={config.particle_count}")
    result = run_localization(world.grid, sequence, config, seed=2)

    # Which maze does the estimate believe it is in, over time?
    print("\nestimate location over time:")
    last_label = None
    for index in range(0, len(sequence), 15):  # once per second
        x, y, __ = result.estimate_trace[index]
        placement = world.maze_containing(float(x), float(y))
        label = placement.name if placement else "between mazes"
        if label != last_label:
            print(
                f"  t={sequence.timestamps[index]:5.1f} s: {label}"
                f"   (error {result.position_errors[index]:.2f} m)"
            )
            last_label = label

    metrics = result.metrics
    if metrics.converged:
        print(f"\nconverged after {metrics.convergence_time_s:.1f} s,"
              f" ATE {metrics.ate_mean_m:.3f} m")
    else:
        print("\ndid not converge on this seed")

    # Map view: ground truth '@', estimate '*' (post-convergence segment).
    start = 0
    if metrics.converged:
        start = int(np.searchsorted(
            sequence.timestamps, sequence.timestamps[0] + metrics.convergence_time_s
        ))
    print("\nmap ('@' ground truth, '*' estimate after convergence):")
    print(
        render_map_with_path(
            world.grid,
            {
                "@": sequence.ground_truth[:, :2],
                "*": result.estimate_trace[start:, :2],
            },
            stride=3,
        )
    )

    path = write_csv(
        results_directory() / "fig1_trajectory.csv",
        ["t_s", "gt_x", "gt_y", "gt_theta", "est_x", "est_y", "est_theta", "err_m"],
        [
            [
                float(sequence.timestamps[i]),
                *[float(v) for v in sequence.ground_truth[i]],
                *[float(v) for v in result.estimate_trace[i]],
                float(result.position_errors[i]),
            ]
            for i in range(len(sequence))
        ],
    )
    print(f"\ntrajectory exported to {path}")


if __name__ == "__main__":
    main()
