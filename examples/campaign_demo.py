"""Campaign demo: a resumable multi-scenario parameter study.

Runs a small campaign — three procedural worlds x two precision
variants x two particle counts — through the Python API, then shows the
three properties that make campaigns practical at study scale:

1. every finished cell streams into an append-only atomic store under
   ``$REPRO_RESULTS_DIR/campaigns/<name>/``,
2. re-running with ``resume=True`` skips all completed cells by content
   key (an interrupted study continues where it stopped),
3. ``status``/``report`` aggregate straight from the store, with no
   recomputation.

The CLI equivalent is shown in docs/reproducibility.md:
``repro campaign run|status|report``.

Run with:  PYTHONPATH=src python examples/campaign_demo.py
"""

from repro.eval import (
    CampaignSpec,
    aggregate_report,
    campaign_status,
    run_campaign,
)
from repro.viz import format_matrix


def main() -> None:
    spec = CampaignSpec(
        name="demo",
        # flight_s keeps the simulated flights short so the demo runs in
        # about a minute; drop the override for full 60 s evaluations.
        scenarios=(
            "office:3:flight_s=15.0",
            "corridor:2:flight_s=15.0",
            "hall:7:flight_s=15.0",
        ),
        variants=("fp32", "fp16qm"),
        particle_counts=(64, 256),
        seeds=(0, 1),
    )
    print(f"campaign {spec.name!r}: {len(spec.cells())} cells")
    print(f"  scenarios : {', '.join(spec.scenarios)}")
    print(f"  variants  : {', '.join(spec.variants)} x N={list(spec.particle_counts)}")
    print()

    summary = run_campaign(spec, progress=lambda line: print(f"  {line}"))
    print(f"executed {summary.executed} cells into {summary.store_root}")

    # An interrupted campaign resumes by content key: everything already
    # stored is skipped, and the finished store is byte-identical.
    resumed = run_campaign(spec, resume=True)
    print(
        f"resume: {resumed.skipped} cells skipped, "
        f"{resumed.executed} executed (nothing was missing)"
    )
    print()

    status = campaign_status(spec.name)
    print(f"status: {status['completed']}/{status['total']} cells completed")
    print()

    report = aggregate_report(spec.name)
    columns = [str(count) for count in spec.particle_counts]
    for scenario in spec.scenarios:
        cells = {
            (variant, str(count)): (
                "n/a"
                if aggregate["mean_ate_m"] is None
                else f"{aggregate['mean_ate_m']:.3f}"
            )
            for (variant, count), aggregate in report[scenario].items()
        }
        print(
            format_matrix(
                "variant",
                list(spec.variants),
                columns,
                cells,
                title=f"ATE (m) vs particle number — {scenario}",
            )
        )
        print()


if __name__ == "__main__":
    main()
