"""Exploration demo: the paper's future-work loop, closed in simulation.

"Future works will extend the proposed system to applications such as
path planning and exploration" (paper Sec. V).  This demo runs that loop
in the main drone maze:

  while frontiers remain:
    1. select the nearest reachable frontier in the *mapped-so-far* grid,
    2. fly there with the waypoint controller (ground-truth pose — the
       localization accuracy budget is covered by the MCL experiments),
    3. integrate the multizone-ToF frames into the log-odds map.

It reports coverage over iterations and the final agreement between the
explored map and the ground-truth maze.

Run with:  python examples/exploration_demo.py
"""

import math

from repro.common.geometry import Pose2D
from repro.common.rng import make_rng
from repro.mapping import GridMapper, MapperConfig, map_agreement, select_goal
from repro.maps import main_drone_maze
from repro.sensors.tof import TofSensor, TofSensorSpec
from repro.vehicle import CrazyflieSimulator, SimConfig


def main() -> None:
    truth_grid = main_drone_maze()
    mapper = GridMapper(MapperConfig(width_m=4.0, height_m=4.0))
    sensor = TofSensor(
        TofSensorSpec(interference_prob=0.01, edge_row_dropout_prob=0.02),
        "tof-front",
        make_rng(0, "explore"),
    )

    def panoramic_scan(at_xy: tuple[float, float]) -> None:
        """Yaw in place, integrating frames — the scan behaviour a real
        exploration policy performs at every reached goal."""
        for heading in [i * math.pi / 6 for i in range(12)]:
            pose = Pose2D(at_xy[0], at_xy[1], heading)
            for _ in range(2):
                mapper.integrate_frame(sensor.measure(truth_grid, pose, 0.0), pose)

    # Seed the map with a panoramic scan from the start position.
    position = (0.5, 0.5)
    panoramic_scan(position)

    print("iter | goal            | route | coverage | agreement")
    visited: list[tuple[float, float]] = []
    for iteration in range(40):
        known = mapper.to_occupancy_grid()
        goal = select_goal(
            known,
            position,
            clearance_m=0.10,
            min_cluster_size=2,
            exclude_near=visited,
        )
        if goal is None and visited:
            # All remaining frontiers were blacklisted: give stale ones a
            # second chance from the (new) current position.
            visited.clear()
            goal = select_goal(known, position, clearance_m=0.10, min_cluster_size=2)
        if goal is None:
            print(f"{iteration:4d} | exploration complete (no reachable frontier)")
            break
        visited.append(goal.target_xy)

        # Fly the planned route on the true maze, scanning along the way.
        sim = CrazyflieSimulator(
            truth_grid,
            goal.route if len(goal.route) >= 2 else [position, goal.target_xy],
            seed=iteration,
            config=SimConfig(max_duration_s=30),
        )
        steps = sim.run()
        for step in steps:
            frame = sensor.measure(truth_grid, step.ground_truth, step.timestamp)
            mapper.integrate_frame(frame, step.ground_truth)
        position = (steps[-1].ground_truth.x, steps[-1].ground_truth.y)
        panoramic_scan(position)

        agreement = map_agreement(mapper.to_occupancy_grid(), truth_grid)
        print(
            f"{iteration:4d} | ({goal.target_xy[0]:.2f},{goal.target_xy[1]:.2f}) "
            f"| {len(goal.route):5d} | {mapper.coverage_fraction():7.1%} "
            f"| {agreement:8.1%}"
        )

    final = map_agreement(mapper.to_occupancy_grid(), truth_grid)
    print(f"\nfinal map agreement with ground truth: {final:.1%}")
    print("\nexplored map ('#' wall, '.' free, ' ' unknown):")
    art = mapper.to_occupancy_grid().to_ascii().splitlines()
    for line in art[::2]:
        print(line[::2])


if __name__ == "__main__":
    main()
