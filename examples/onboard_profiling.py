"""On-board execution profile: latency, power, energy and memory on GAP9.

Walks the calibrated GAP9 models through the paper's operating envelope:

* per-step execution times and the parallel speedup (Table I / Fig. 10),
* operating points with power and energy per update (Table II),
* the whole-drone power budget (the "below 7 %" claim),
* which (particles, map) working sets fit L1 vs L2 (Fig. 9).

Run with:  python examples/onboard_profiling.py
"""

from repro import PrecisionMode
from repro.board import end_to_end_latency, system_power_budget
from repro.soc import (
    Gap9PerfModel,
    Gap9PowerModel,
    MclStep,
    MemoryLevel,
    max_particles,
)
from repro.viz import format_table


def main() -> None:
    perf = Gap9PerfModel()
    power = Gap9PowerModel()

    print("== Latency and speedup (GAP9 @ 400 MHz) ==")
    rows = []
    for count in (64, 1024, 16384):
        rows.append(
            [
                count,
                f"{perf.update_time_ns(count, 1) / 1e6:.3f} ms",
                f"{perf.update_time_ns(count, 8) / 1e6:.3f} ms",
                f"{perf.total_speedup(count):.2f}x",
                "yes" if perf.is_realtime(count, 8) else "no",
            ]
        )
    print(format_table(["particles", "1 core", "8 cores", "speedup", "real-time@15Hz"], rows))

    print("\n== Step breakdown at N=16384, 8 cores ==")
    rows = [
        [step.value, f"{perf.step_time_ns(step, 16384, 8) / 1e6:.2f} ms"]
        for step in MclStep
    ]
    print(format_table(["step", "time"], rows))

    print("\n== Operating points (Table II) ==")
    rows = []
    for freq, count in ((400e6, 1024), (12e6, 1024), (400e6, 16384), (200e6, 16384)):
        op = power.operating_point(freq, count)
        rows.append(
            [
                f"{op['frequency_mhz']:.0f} MHz",
                count,
                f"{op['avg_power_mw']:.0f} mW",
                f"{op['execution_time_ms']:.2f} ms",
                f"{op['energy_per_update_uj']:.0f} uJ",
            ]
        )
    print(format_table(["clock", "particles", "power", "latency", "energy/update"], rows))

    print("\n== Whole-drone power budget ==")
    budget = system_power_budget(gap9_frequency_hz=400e6)
    print(f"  motors            : {budget.motors_w * 1e3:7.0f} mW")
    print(f"  electronics       : {budget.electronics_w * 1e3:7.0f} mW")
    print(f"  2x multizone ToF  : {budget.tof_sensors_w * 1e3:7.0f} mW")
    print(f"  GAP9 (MCL)        : {budget.gap9_w * 1e3:7.0f} mW")
    print(
        f"  sensing+processing: {budget.sensing_processing_w * 1e3:7.0f} mW "
        f"= {budget.sensing_processing_fraction * 100:.1f} % of total (paper: ~7 %)"
    )

    print("\n== End-to-end latency pipeline (N=4096) ==")
    pipeline = end_to_end_latency(4096)
    print(f"  sensor integration: {pipeline.sensor_frame_s * 1e3:6.1f} ms")
    print(f"  bus transfer      : {pipeline.transfer_s * 1e6:6.1f} us")
    print(f"  MCL update        : {pipeline.mcl_update_s * 1e3:6.2f} ms")
    print(f"  total             : {pipeline.total_s * 1e3:6.1f} ms")

    print("\n== Memory capacity (Fig. 9 cross-sections) ==")
    rows = []
    for area in (8.0, 31.2, 128.0):
        rows.append(
            [
                f"{area:.1f} m2",
                max_particles(area, PrecisionMode.FP32, MemoryLevel.L1),
                max_particles(area, PrecisionMode.FP16_QM, MemoryLevel.L1),
                max_particles(area, PrecisionMode.FP32, MemoryLevel.L2),
                max_particles(area, PrecisionMode.FP16_QM, MemoryLevel.L2),
            ]
        )
    print(
        format_table(
            ["map size", "fp32 L1", "fp16qm L1", "fp32 L2", "fp16qm L2"],
            rows,
            footnote="max particle count fitting next to the map (0.05 m cells)",
        )
    )


if __name__ == "__main__":
    main()
