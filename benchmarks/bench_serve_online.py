"""Online gateway benchmark: fleets served through the socket.

Where ``bench_serve.py`` measures the in-process serving library, this
bench measures the full network path: an :class:`OnlineServer` on a
loopback TCP port, fleets of R mixed-family fp32/N=64 sessions driven
to completion by several concurrent client connections (one step
barrier per connection per round, timed individually).  Reported per
fleet size:

* ``sessions_per_s`` / ``frames_per_s`` — end-to-end serve throughput,
* ``step_latency_p50_ms`` / ``p99`` — submit-to-served barrier latency,
* ``ticks`` — how many packed flushes served the whole fleet (the
  coalescing win: frames-per-tick >> 1 under concurrent clients).

Every trace that comes back through the socket is asserted **bitwise
identical** to the same (scenario, variant, N, seed) executed alone
through the reference backend — the serve layer's equivalence contract
survives JSON framing and the event loop.

Results go to ``results/BENCH_serve_online.json``.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from conftest import current_scale

from repro.core.config import MclConfig
from repro.engine.backend import RunSpec
from repro.engine.reference import ReferenceBackend
from repro.maps.distance_field import DistanceField
from repro.scenarios import build_scenario
from repro.scenarios.fleet import FleetSpec
from repro.serve import AdmissionPolicy, OnlineServer
from repro.serve.online import drive_fleet
from repro.viz.export import results_directory
from repro.viz.tables import format_table

FAMILIES = ("office", "corridor")
VARIANT = "fp32"
PARTICLES = 64
CONNECTIONS = 8
FRAMES_PER_ROUND = 8


def online_protocol() -> tuple[tuple[int, ...], float]:
    """(fleet sizes, flight seconds) for the current scale.

    Non-smoke scales serve fleets of at least 64 sessions — the regime
    the gateway exists for.
    """
    if current_scale() == "smoke":
        return (4, 16), 6.0
    if current_scale() == "paper":
        return (64, 256, 1024), 20.0
    return (64, 256), 10.0


def _traces_equal(a, b) -> bool:
    return (
        a.update_count == b.update_count
        and np.array_equal(a.timestamps, b.timestamps)
        and np.array_equal(a.position_errors, b.position_errors)
        and np.array_equal(a.yaw_errors, b.yaw_errors)
        and np.array_equal(a.estimate_trace, b.estimate_trace)
    )


def test_serve_online_throughput(benchmark):
    sizes, flight_s = online_protocol()
    config = MclConfig(particle_count=PARTICLES).with_variant(VARIANT)

    # One-time costs shared by the server and the solo references:
    # generated worlds + EDTs (the manager caches the same objects).
    scenarios = {
        family: build_scenario(f"{family}:1:flight_s={flight_s}")
        for family in FAMILIES
    }
    fields = {
        family: DistanceField.build_for_mode(
            scenario.grid, config.r_max, config.precision
        )
        for family, scenario in scenarios.items()
    }

    async def serve_fleet(size: int):
        fleet = FleetSpec.mixed(
            FAMILIES,
            variant=VARIANT,
            particle_count=PARTICLES,
            replicas=size // len(FAMILIES),
            flight_s=flight_s,
        )
        policy = AdmissionPolicy(max_sessions=max(1024, size))
        async with OnlineServer(policy=policy) as server:
            host, port = server.address
            return await drive_fleet(
                host,
                port,
                fleet,
                connections=CONNECTIONS,
                frames_per_round=FRAMES_PER_ROUND,
            )

    def run() -> dict:
        report: dict = {
            "protocol": {
                "families": list(FAMILIES),
                "variant": VARIANT,
                "particle_count": PARTICLES,
                "flight_s": flight_s,
                "connections": CONNECTIONS,
                "frames_per_round": FRAMES_PER_ROUND,
            },
            "fleets": [],
            "equivalent": True,
        }
        backend = ReferenceBackend()
        for size in sizes:
            drive = asyncio.run(serve_fleet(size))

            start = time.perf_counter()
            equivalent = True
            for closed in drive.results.values():
                family = closed.spec.scenario.split(":", 1)[0]
                solo = backend.execute(
                    scenarios[family].grid,
                    [RunSpec(scenarios[family].sequence, closed.spec.seed)],
                    config,
                    fields[family],
                )[0]
                equivalent &= _traces_equal(closed.trace, solo)
            solo_s = time.perf_counter() - start

            report["equivalent"] &= equivalent
            latency = drive.step_latency
            frames = drive.stats["frames_served"]
            report["fleets"].append(
                {
                    "sessions": size,
                    "frames_served": frames,
                    "serve_s": drive.serve_s,
                    "solo_reference_s": solo_s,
                    "sessions_per_s": size / drive.serve_s,
                    "frames_per_s": frames / drive.serve_s,
                    "step_latency_p50_ms": 1e3 * latency.percentile(0.50),
                    "step_latency_p99_ms": 1e3 * latency.percentile(0.99),
                    "barriers": latency.count,
                    "ticks": drive.stats["ticks"],
                    "frames_per_tick": frames / max(1, drive.stats["ticks"]),
                    "equivalent": equivalent,
                }
            )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    rows = [
        [
            entry["sessions"],
            f"{entry['serve_s']:.2f}s",
            f"{entry['sessions_per_s']:.1f}",
            f"{entry['frames_per_s']:.0f}",
            f"{entry['step_latency_p50_ms']:.2f}ms",
            f"{entry['step_latency_p99_ms']:.2f}ms",
            f"{entry['frames_per_tick']:.1f}",
        ]
        for entry in report["fleets"]
    ]
    print(
        format_table(
            [
                "fleet",
                "serve",
                "sessions/s",
                "frames/s",
                "p50 step",
                "p99 step",
                "frames/tick",
            ],
            rows,
            title=(
                f"Online gateway — fleets over loopback TCP "
                f"({VARIANT}/N={PARTICLES}, {CONNECTIONS} connections)"
            ),
            footnote=(
                "served traces bitwise-identical to solo reference runs: "
                f"{report['equivalent']} (asserted)"
            ),
        )
    )

    path = results_directory() / "BENCH_serve_online.json"
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report: {path}")

    assert report["equivalent"], "the socket path broke the bitwise contract"
    if current_scale() != "smoke":
        assert report["fleets"][-1]["sessions"] >= 64, (
            "online bench must exercise fleets of >= 64 sessions"
        )
    for entry in report["fleets"]:
        assert entry["frames_per_tick"] > 1.0, (
            "tick coalescing degraded to one frame per packed flush at "
            f"fleet size {entry['sessions']}"
        )
