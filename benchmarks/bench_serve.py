"""Serving-layer benchmark: multiplexed fleets vs per-session stepping.

Measures online fleet throughput as fleet size grows: R concurrent
small-N sessions (the serving regime — mixed office/corridor worlds,
fp32/N=64) served

1. **multiplexed** — one ``SessionManager`` stepping all R sessions
   through the scheduler's packed ``(R, N)``-stacked batched calls;
2. **sequential** — the same R (scenario, seed) runs stepped one at a
   time through the reference backend, i.e. one scalar filter loop per
   drone (what serving would cost without the stacking).

Both modes produce bitwise-identical traces (asserted), so the timings
compare pure execution strategy.  Scenario generation and EDT
construction are excluded from both timings — they are one-time,
cached costs shared by any strategy.

Results go to ``results/BENCH_serve.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from conftest import current_scale

from repro.core.config import MclConfig
from repro.engine.backend import RunSpec
from repro.engine.reference import ReferenceBackend
from repro.maps.distance_field import DistanceField
from repro.scenarios import build_scenario
from repro.serve import SessionManager, SessionSpec
from repro.viz.export import results_directory
from repro.viz.tables import format_table

FAMILIES = ("office", "corridor")
VARIANT = "fp32"
PARTICLES = 64


def serve_protocol() -> tuple[tuple[int, ...], float]:
    """(fleet sizes, flight seconds) for the current scale."""
    if current_scale() == "smoke":
        return (1, 4), 10.0
    if current_scale() == "paper":
        return (1, 2, 4, 8, 16, 32), 30.0
    return (1, 2, 4, 8, 16), 20.0


def _fleet_specs(size: int, flight_s: float) -> list[SessionSpec]:
    """R sessions alternating between the two families, seeds 0..R-1."""
    return [
        SessionSpec(
            session_id=f"{seed:03d}.{FAMILIES[seed % len(FAMILIES)]}",
            scenario=f"{FAMILIES[seed % len(FAMILIES)]}:1:flight_s={flight_s}",
            variant=VARIANT,
            particle_count=PARTICLES,
            seed=seed,
        )
        for seed in range(size)
    ]


def _traces_equal(a, b) -> bool:
    return (
        a.update_count == b.update_count
        and np.array_equal(a.timestamps, b.timestamps)
        and np.array_equal(a.position_errors, b.position_errors)
        and np.array_equal(a.yaw_errors, b.yaw_errors)
        and np.array_equal(a.estimate_trace, b.estimate_trace)
    )


def test_serve_throughput(benchmark):
    sizes, flight_s = serve_protocol()
    config = MclConfig(particle_count=PARTICLES).with_variant(VARIANT)

    # One-time costs shared by both strategies: generated worlds + EDTs.
    scenarios = {
        family: build_scenario(f"{family}:1:flight_s={flight_s}")
        for family in FAMILIES
    }
    fields = {
        family: DistanceField.build_for_mode(
            scenario.grid, config.r_max, config.precision
        )
        for family, scenario in scenarios.items()
    }

    def run() -> dict:
        report: dict = {
            "protocol": {
                "families": list(FAMILIES),
                "variant": VARIANT,
                "particle_count": PARTICLES,
                "flight_s": flight_s,
            },
            "fleets": [],
            "equivalent": True,
        }
        for size in sizes:
            specs = _fleet_specs(size, flight_s)

            manager = SessionManager(backend="batched")
            for spec in specs:
                manager.create(spec)
            start = time.perf_counter()
            frames = manager.run_to_completion(frames_per_flush=32)
            multiplexed_s = time.perf_counter() - start
            served = {
                spec.session_id: manager.close(spec.session_id) for spec in specs
            }

            backend = ReferenceBackend()
            start = time.perf_counter()
            solo = {}
            for spec in specs:
                family = FAMILIES[spec.seed % len(FAMILIES)]
                solo[spec.session_id] = backend.execute(
                    scenarios[family].grid,
                    [RunSpec(scenarios[family].sequence, spec.seed)],
                    config,
                    fields[family],
                )[0]
            sequential_s = time.perf_counter() - start

            equivalent = all(
                _traces_equal(served[sid].trace, solo[sid]) for sid in solo
            )
            report["equivalent"] &= equivalent
            report["fleets"].append(
                {
                    "sessions": size,
                    "frames": frames,
                    "multiplexed_s": multiplexed_s,
                    "sequential_s": sequential_s,
                    "speedup": sequential_s / multiplexed_s,
                    "multiplexed_sessions_per_s": size / multiplexed_s,
                    "sequential_sessions_per_s": size / sequential_s,
                    "equivalent": equivalent,
                }
            )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    rows = [
        [
            entry["sessions"],
            f"{entry['multiplexed_s']:.2f}s",
            f"{entry['sequential_s']:.2f}s",
            f"{entry['speedup']:.2f}x",
            f"{entry['multiplexed_sessions_per_s']:.2f}",
        ]
        for entry in report["fleets"]
    ]
    print(
        format_table(
            ["fleet", "multiplexed", "sequential", "speedup", "sessions/s"],
            rows,
            title=(
                f"Online serving — fleet multiplexing vs per-session stepping "
                f"({VARIANT}/N={PARTICLES})"
            ),
            footnote=(
                "identical traces both ways: "
                f"{report['equivalent']} (bitwise, asserted)"
            ),
        )
    )

    path = results_directory() / "BENCH_serve.json"
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report: {path}")

    assert report["equivalent"], "serving broke the bitwise contract"
    largest = report["fleets"][-1]
    assert largest["sessions"] == 1 or largest["speedup"] > 1.0, (
        "multiplexed serving no faster than per-session stepping at "
        f"fleet size {largest['sessions']}"
    )
