"""Ablation — the movement thresholds gating filter updates.

The paper only updates when the drone moves more than d_xy = 0.1 m or
rotates more than d_theta = 0.1 rad.  Larger thresholds mean fewer
updates (less compute and less injected motion noise), smaller ones mean
more frequent but weaker corrections.  This ablation sweeps the gate and
reports accuracy vs update count — the compute/accuracy knob an adopter
would actually tune.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import MclConfig
from repro.eval.runner import run_localization
from repro.viz.export import write_csv
from repro.viz.tables import format_table

THRESHOLDS = (0.05, 0.1, 0.2, 0.4)
SEEDS = (0, 1)


def test_ablation_update_trigger(benchmark, world, sequences):
    sequence = sequences[2]

    def compute():
        outcomes = {}
        for threshold in THRESHOLDS:
            config = dataclasses.replace(
                MclConfig(particle_count=4096),
                d_xy=threshold,
                d_theta=threshold,
            )
            outcomes[threshold] = [
                run_localization(world.grid, sequence, config, seed=seed)
                for seed in SEEDS
            ]
        return outcomes

    outcomes = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    csv_rows = []
    for threshold, results in outcomes.items():
        successes = sum(1 for r in results if r.metrics.success)
        ates = [r.metrics.ate_mean_m for r in results if r.metrics.converged]
        updates = float(np.mean([r.update_count for r in results]))
        ate = float(np.mean(ates)) if ates else float("nan")
        rows.append(
            [
                f"{threshold:.2f}",
                f"{successes}/{len(results)}",
                f"{ate:.3f}" if ates else "n/a",
                f"{updates:.0f}",
            ]
        )
        csv_rows.append([threshold, successes / len(results), ate, updates])

    print()
    print(
        format_table(
            ["d_xy / d_theta", "success", "ATE (m)", "updates/run"],
            rows,
            title="Ablation — update gating thresholds (seq2, N=4096)",
            footnote="paper uses 0.1 m / 0.1 rad",
        )
    )
    write_csv(
        "results/ablation_trigger.csv",
        ["threshold", "success_rate", "ate_m", "updates"],
        csv_rows,
    )

    # Update counts must fall monotonically with the threshold.
    update_means = [
        float(np.mean([r.update_count for r in outcomes[t]])) for t in THRESHOLDS
    ]
    assert all(b <= a for a, b in zip(update_means, update_means[1:]))
    # The paper's 0.1 setting must work.
    assert any(r.metrics.success for r in outcomes[0.1])
