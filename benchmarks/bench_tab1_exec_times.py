"""Table I — per-particle execution times of the four MCL steps.

Prints the calibrated GAP9 model's prediction next to every published
cell of Table I and asserts the reproduction tolerance (<=10 % per cell).
The paper's measurement is the calibration target, so this bench is the
regression gate for the whole latency model.
"""

from __future__ import annotations

from repro.core.config import PAPER_PARTICLE_COUNTS
from repro.soc.perf import Gap9PerfModel, MclStep
from repro.viz.export import write_csv
from repro.viz.tables import format_table

#: Published Table I values: {step: {N: (1-core ns, 8-core ns)}}.
PAPER_TABLE_I = {
    MclStep.OBSERVATION: {
        64: (8531, 1412), 256: (8484, 1313), 1024: (8518, 1283),
        4096: (8649, 1294), 16384: (8704, 1295),
    },
    MclStep.MOTION: {
        64: (2828, 500), 256: (2715, 391), 1024: (2689, 357),
        4096: (3002, 390), 16384: (2985, 386),
    },
    MclStep.RESAMPLING: {
        64: (313, 250), 256: (191, 121), 1024: (161, 84),
        4096: (558, 108), 16384: (556, 104),
    },
    MclStep.POSE_COMPUTATION: {
        64: (750, 234), 256: (633, 117), 1024: (604, 86),
        4096: (777, 101), 16384: (775, 99),
    },
}


def test_tab1_execution_times(benchmark):
    model = Gap9PerfModel()

    def compute():
        table = {}
        for step in MclStep:
            for count in PAPER_PARTICLE_COUNTS:
                table[(step, count)] = (
                    model.step_time_per_particle_ns(step, count, 1),
                    model.step_time_per_particle_ns(step, count, 8),
                )
        return table

    table = benchmark(compute)

    rows = []
    csv_rows = []
    worst_error = 0.0
    for step in MclStep:
        for count in PAPER_PARTICLE_COUNTS:
            ours_1, ours_8 = table[(step, count)]
            ref_1, ref_8 = PAPER_TABLE_I[step][count]
            err_1 = abs(ours_1 - ref_1) / ref_1 * 100
            err_8 = abs(ours_8 - ref_8) / ref_8 * 100
            worst_error = max(worst_error, err_1, err_8)
            rows.append(
                [
                    step.value,
                    count,
                    f"{ours_1:.0f} / {ref_1}",
                    f"{err_1:.1f}%",
                    f"{ours_8:.0f} / {ref_8}",
                    f"{err_8:.1f}%",
                ]
            )
            csv_rows.append(
                [step.value, count, ours_1, ref_1, ours_8, ref_8]
            )

    print()
    print(
        format_table(
            ["step", "N", "1 core: model/paper (ns)", "err", "8 cores: model/paper (ns)", "err"],
            rows,
            title="Table I — per-particle execution times, model vs paper",
            footnote=f"worst cell error {worst_error:.1f} % "
            "(particles in L2 beyond 1024)",
        )
    )
    write_csv(
        "results/tab1_exec_times.csv",
        ["step", "particles", "model_1c_ns", "paper_1c_ns", "model_8c_ns", "paper_8c_ns"],
        csv_rows,
    )

    assert worst_error <= 10.0, "Table I reproduction must stay within 10 % per cell"

    # Derived headline numbers.
    low_ms = model.update_time_ns(64, 8) / 1e6
    high_ms = model.update_time_ns(16384, 8) / 1e6
    print(f"\nupdate latency span: {low_ms:.2f} ms (N=64) .. {high_ms:.2f} ms (N=16384)")
    print("paper abstract: 0.2-30 ms")
    assert 0.15 <= low_ms <= 0.3
    assert 28.0 <= high_ms <= 33.0
