"""Ablation grid benchmark: sigma x r_max as first-class config specs.

The paper's accuracy results are ablations over the filter's
configuration; this bench exercises the config-identity axis end to end:
a sigma_obs x r_max grid expands into config specs
(``variant[+key=value...]``), sweeps through the engine as ordinary
cells, and lands in ``results/BENCH_ablation.json`` keyed by canonical
spec id and config fingerprint.

Beyond timing, it asserts the identity invariants the grid relies on:

* every (sigma, r_max) combination has a distinct fingerprint
  (injectivity over the grid),
* the paper-default combination canonicalizes to the bare variant and
  reproduces the default fingerprint (legacy identity preserved),
* reference and batched backends agree run-for-run on one ablated cell
  (the bitwise contract covers ablations, not just paper variants).
"""

from __future__ import annotations

import json
import math
import time

from conftest import current_backend, current_scale

from repro.core.config import ConfigSpec, MclConfig
from repro.eval.aggregate import SweepProtocol
from repro.eval.sweep_engine import SweepEngine
from repro.viz.export import results_directory
from repro.viz.tables import format_matrix

VARIANT = "fp32"
SCENARIO = "corridor:2"


def ablation_grid() -> tuple[tuple[float, ...], tuple[float, ...], int, SweepProtocol, float]:
    """(sigmas, r_maxes, N, protocol, flight seconds) per scale."""
    if current_scale() == "smoke":
        return (1.0, 2.0), (1.5,), 32, SweepProtocol(1, (0,)), 10.0
    if current_scale() == "paper":
        return (
            (0.5, 1.0, 2.0, 4.0),
            (1.0, 1.5, 2.0),
            256,
            SweepProtocol(1, (0, 1, 2, 3)),
            60.0,
        )
    return (1.0, 2.0, 4.0), (1.0, 1.5), 64, SweepProtocol(1, (0, 1)), 20.0


def test_ablation_grid(benchmark):
    sigmas, r_maxes, count, protocol, flight_s = ablation_grid()
    scenario = f"{SCENARIO}:flight_s={flight_s}"
    specs = [
        ConfigSpec.parse(VARIANT).with_override("sigma", sigma).with_override(
            "r_max", r_max
        )
        for sigma in sigmas
        for r_max in r_maxes
    ]
    variants = [spec.id for spec in specs]

    def run() -> dict:
        engine = SweepEngine(backend=current_backend())
        start = time.perf_counter()
        results = engine.run_scenarios(
            [scenario], variants, [count], protocol=protocol
        )
        elapsed = time.perf_counter() - start
        result = results[next(iter(results))]
        cells = {}
        for spec in specs:
            cell = result.cells[(spec.id, count)]
            cells[spec.id] = {
                "fingerprint": spec.fingerprint(),
                "runs": cell.aggregate.run_count,
                "success_rate": cell.aggregate.success_rate,
                "mean_ate_m": (
                    None
                    if math.isnan(cell.aggregate.mean_ate_m)
                    else cell.aggregate.mean_ate_m
                ),
            }
        return {
            "scenario": scenario,
            "variant": VARIANT,
            "particle_count": count,
            "seeds": list(protocol.seeds),
            "sigma_obs": list(sigmas),
            "r_max": list(r_maxes),
            "backend": current_backend(),
            "sweep_s": elapsed,
            "cells": cells,
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    # Identity invariants of the grid.
    fingerprints = [cell["fingerprint"] for cell in report["cells"].values()]
    assert len(set(fingerprints)) == len(specs), "fingerprint collision in grid"
    default_spec = ConfigSpec.parse(VARIANT).with_override(
        "sigma", MclConfig().sigma_obs
    ).with_override("r_max", MclConfig().r_max)
    if default_spec.id in report["cells"]:
        assert default_spec.id == VARIANT
        assert report["cells"][VARIANT]["fingerprint"] == MclConfig().fingerprint()

    # One ablated cell must agree across backends run-for-run.
    probe = specs[0]
    engines = {
        name: SweepEngine(backend=name) for name in ("reference", "batched")
    }
    probes = {
        name: engine.run_scenarios(
            [report["scenario"]], [probe.id], [report["particle_count"]],
            protocol=SweepProtocol(1, (protocol.seeds[0],)),
        )
        for name, engine in engines.items()
    }

    def signature(results):
        cell = results[next(iter(results))].cells[(probe.id, report["particle_count"])]
        return [
            (run.seed, run.update_count, run.position_errors.tobytes())
            for run in cell.runs
        ]

    assert signature(probes["reference"]) == signature(probes["batched"])

    print()
    cells = {}
    for sigma in sigmas:
        for r_max in r_maxes:
            spec = ConfigSpec.parse(VARIANT).with_override(
                "sigma", sigma
            ).with_override("r_max", r_max)
            entry = report["cells"][spec.id]
            ate = entry["mean_ate_m"]
            cells[(f"sigma={sigma}", f"r_max={r_max}")] = (
                "n/a" if ate is None else f"{ate:.3f}"
            )
    print(
        format_matrix(
            "sigma_obs",
            [f"sigma={sigma}" for sigma in sigmas],
            [f"r_max={r}" for r in r_maxes],
            cells,
            title=(
                f"Ablation grid ATE (m) — {report['scenario']}, "
                f"{VARIANT}/N={report['particle_count']}"
            ),
            footnote=(
                f"{len(specs)} config specs, {report['sweep_s']:.2f}s sweep, "
                f"backend={report['backend']}; all fingerprints distinct"
            ),
        )
    )

    path = results_directory() / "BENCH_ablation.json"
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report: {path}")
