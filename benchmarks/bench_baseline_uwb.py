"""Sec. IV-B comparison — MCL vs the UWB localization references.

The paper positions its 0.15 m infrastructure-less accuracy against UWB
systems evaluated in similar environments: 0.22 m [7] and 0.28 m [6].
This bench runs the calibrated UWB EKF baseline and the dead-reckoning
baseline on the canonical sequences and prints the comparison rows.

Expected shape: MCL < UWB < dead reckoning's final drift, with UWB mean
error landing in the published 0.2-0.3 m band.
"""

from __future__ import annotations

import numpy as np

from conftest import accuracy_protocol

from repro.baselines.dead_reckoning import run_dead_reckoning
from repro.baselines.uwb import run_uwb_baseline
from repro.core.config import MclConfig
from repro.eval.runner import run_localization
from repro.viz.export import write_csv
from repro.viz.tables import format_table


def test_baseline_comparison(benchmark, world, sequences):
    protocol = accuracy_protocol()
    used = sequences[: protocol.sequence_count]

    def compute():
        mcl_errors = []
        uwb_errors = []
        reckoning_errors = []
        for sequence in used:
            for seed in protocol.seeds:
                mcl = run_localization(
                    world.grid, sequence, MclConfig(particle_count=4096), seed=seed
                )
                if mcl.metrics.converged:
                    mcl_errors.append(mcl.metrics.ate_mean_m)
                uwb = run_uwb_baseline(
                    sequence.ground_truth[:, :2],
                    sequence.timestamps,
                    volume_size=(world.grid.width_m, world.grid.height_m),
                    seed=seed,
                )
                uwb_errors.append(uwb.mean_error_m)
            reckoning_errors.append(run_dead_reckoning(sequence).final_error_m)
        return mcl_errors, uwb_errors, reckoning_errors

    mcl_errors, uwb_errors, reckoning_errors = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    mcl_mean = float(np.mean(mcl_errors)) if mcl_errors else float("nan")
    uwb_mean = float(np.mean(uwb_errors))
    reckoning_mean = float(np.mean(reckoning_errors))
    rows = [
        ["MCL (this reproduction)", "none", f"{mcl_mean:.3f} m", "0.15 m"],
        ["UWB EKF baseline", "4 anchors", f"{uwb_mean:.3f} m", "0.22 m [7] / 0.28 m [6]"],
        ["dead reckoning (final)", "none", f"{reckoning_mean:.3f} m", "unbounded drift"],
    ]
    print()
    print(
        format_table(
            ["method", "infrastructure", "measured", "paper reference"],
            rows,
            title="Sec. IV-B — localization error comparison",
        )
    )
    write_csv(
        "results/baseline_comparison.csv",
        ["method", "mean_error_m"],
        [["mcl", mcl_mean], ["uwb", uwb_mean], ["dead_reckoning_final", reckoning_mean]],
    )

    # Who wins, by roughly what factor.
    assert mcl_errors, "MCL must converge on at least some runs"
    assert mcl_mean < uwb_mean, "infrastructure-less MCL must beat the UWB baseline"
    assert 0.12 <= uwb_mean <= 0.40, "UWB baseline must sit in the published band"
