"""Ablation — how much observation information does MCL need?

The paper's headline difficulty is the sensor's *low element count*; this
ablation varies how many zone measurements feed each update, from a
single 8-zone row per sensor up to the paper-equivalent full-frame
weighting (2 rows at 4x replication == all 8 rows, see DESIGN.md).

Expected shape: success degrades as the observation thins out — the
dual-sensor full-frame configuration is the most reliable.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import MclConfig
from repro.eval.runner import run_localization
from repro.viz.export import write_csv
from repro.viz.tables import format_table

CONFIGS = [
    ("1 row, no replication (16 beams)", (3,), 1.0),
    ("2 rows, no replication (32 beams)", (3, 4), 1.0),
    ("4 rows, no replication (64 beams)", (2, 3, 4, 5), 1.0),
    ("2 rows x4 = full frame (paper)", (3, 4), 4.0),
]

SEEDS = (0, 1)


def test_ablation_zone_information(benchmark, world, sequences):
    sequence = sequences[0]

    def compute():
        outcomes = {}
        for label, rows, replication in CONFIGS:
            config = dataclasses.replace(
                MclConfig(particle_count=4096),
                beam_rows=rows,
                beam_replication=replication,
            )
            results = [
                run_localization(world.grid, sequence, config, seed=seed)
                for seed in SEEDS
            ]
            outcomes[label] = results
        return outcomes

    outcomes = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows_out = []
    csv_rows = []
    for label, results in outcomes.items():
        successes = sum(1 for r in results if r.metrics.success)
        ates = [r.metrics.ate_mean_m for r in results if r.metrics.converged]
        ate = float(np.mean(ates)) if ates else float("nan")
        rows_out.append(
            [
                label,
                f"{successes}/{len(results)}",
                f"{ate:.3f}" if ates else "n/a",
            ]
        )
        csv_rows.append([label, successes / len(results), ate])

    print()
    print(
        format_table(
            ["configuration", "success", "ATE (m)"],
            rows_out,
            title="Ablation — observation information per update (seq0, N=4096)",
        )
    )
    write_csv(
        "results/ablation_zones.csv",
        ["config", "success_rate", "ate_m"],
        csv_rows,
    )

    # The paper configuration must be at least as reliable as the thinnest one.
    full = sum(1 for r in outcomes[CONFIGS[-1][0]] if r.metrics.success)
    thin = sum(1 for r in outcomes[CONFIGS[0][0]] if r.metrics.success)
    assert full >= thin
