"""Fig. 6 (ATE vs particle number) and Fig. 7 (success rate vs particle
number) for the four paper variants: fp32, fp321tof, fp32qm, fp16qm.

Regenerates both figures' series by sweeping the evaluation protocol over
{variant} x {64..16384 particles} x {sequences} x {seeds}, prints the
numeric tables plus ASCII renderings, and exports CSVs under results/.

Expected shape (paper Sec. IV-B/C):
* ATE ~0.15 m and roughly flat in N for the dual-sensor variants,
* success rate rising with N, above 95 % at high N for dual-sensor,
* fp321tof clearly below the others in success rate,
* the quantized variants at least as good as fp32.
"""

from __future__ import annotations

import math

from conftest import accuracy_protocol, current_backend, particle_grid

from repro.eval.aggregate import run_sweep
from repro.viz.ascii import line_plot
from repro.viz.export import export_series
from repro.viz.tables import format_table

VARIANTS = ["fp32", "fp321tof", "fp32qm", "fp16qm"]


def test_fig6_fig7_accuracy_sweep(benchmark, world, sequences, sweep_cache):
    protocol = accuracy_protocol()
    counts = particle_grid()

    def sweep():
        return run_sweep(
            world.grid,
            sequences,
            variants=VARIANTS,
            particle_counts=counts,
            protocol=protocol,
            backend=current_backend(),
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sweep_cache["accuracy"] = result
    sweep_cache["counts"] = counts

    ate_rows = []
    success_rows = []
    ate_series = {}
    success_series = {}
    for variant in VARIANTS:
        ates = result.ate_series(variant, counts)
        successes = result.success_series(variant, counts)
        ate_rows.append(
            [variant] + [f"{a:.3f}" if not math.isnan(a) else "n/a" for a in ates]
        )
        success_rows.append([variant] + [f"{s:.0f}%" for s in successes])
        ate_series[variant] = (list(map(float, counts)), ates)
        success_series[variant] = (list(map(float, counts)), successes)

    header = ["variant"] + [str(c) for c in counts]
    runs = next(iter(result.cells.values())).aggregate.run_count
    print()
    print(
        format_table(
            header,
            ate_rows,
            title=f"Fig. 6 — ATE (m) vs particle number  [{runs} runs/cell]",
            footnote="paper: ~0.15 m, flat in N for dual-sensor variants",
        )
    )
    print()
    print(
        format_table(
            header,
            success_rows,
            title="Fig. 7 — success rate vs particle number",
            footnote="paper: >95 % at high N (dual sensor); fp321tof markedly lower",
        )
    )
    print()
    print(line_plot(ate_series, title="Fig. 6 — ATE (m)", log_x=True, y_label="ATE"))
    print()
    print(
        line_plot(
            success_series, title="Fig. 7 — success rate (%)", log_x=True, y_label="%"
        )
    )
    export_series("fig6_ate", ate_series, x_label="particles", y_label="ate_m")
    export_series(
        "fig7_success", success_series, x_label="particles", y_label="success_pct"
    )

    # Shape assertions (who wins, by roughly what factor).  The margins
    # account for the protocol size: quick scale has 6 runs/cell vs the
    # paper's 36, so per-cell rates carry +-1-run granularity.
    best_n = counts[-1]
    for variant in ("fp32", "fp32qm", "fp16qm"):
        cell = result.cells[(variant, best_n)]
        assert cell.aggregate.success_rate >= 0.6, (
            f"{variant} at N={best_n} must succeed in most runs"
        )
        assert cell.aggregate.mean_ate_m < 0.25, (
            f"{variant} accuracy should be near the paper's 0.15 m"
        )
    dual = result.cells[("fp32", best_n)].aggregate.success_rate
    single = result.cells[("fp321tof", best_n)].aggregate.success_rate
    assert single <= dual, "single-ToF must not beat the dual-sensor setup"
