"""Micro-benchmarks of the numpy MCL kernels (host-side timings).

Complementary to the GAP9 latency model: these measure the *Python
implementation's* per-step cost with pytest-benchmark so regressions in
the vectorized kernels are caught.  Absolute numbers are host-dependent
and not comparable to Table I — the structure (observation dominating,
resampling cheap) is.

Each kernel's timing summary is also written to
``results/BENCH_kernels.json`` so CI can archive per-commit numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.common.geometry import Pose2D
from repro.common.rng import make_rng
from repro.core.config import MclConfig
from repro.core.motion import apply_motion_model
from repro.core.observation import apply_observation_model, extract_beams
from repro.core.particles import ParticleSet
from repro.core.pose_estimate import estimate_pose
from repro.core.resampling import (
    draw_wheel_offset,
    parallel_systematic_resample,
    systematic_resample,
)
from repro.maps.distance_field import DistanceField
from repro.maps.edt import euclidean_distance_field
from repro.maps.maze import build_drone_maze_world, main_drone_maze
from repro.sensors.tof import TofSensor, TofSensorSpec

N_PARTICLES = 4096

#: Per-kernel timing summaries collected by :func:`_record`, flushed to
#: ``results/BENCH_kernels.json`` when the module finishes.
_RESULTS: dict[str, dict] = {}


def _record(benchmark, name: str) -> None:
    """Stash one kernel's pytest-benchmark stats for the JSON report."""
    meta = getattr(benchmark, "stats", None)
    stats = getattr(meta, "stats", None)
    if stats is None:  # --benchmark-disable runs
        return
    _RESULTS[name] = {
        "mean_s": stats.mean,
        "min_s": stats.min,
        "stddev_s": stats.stddev,
        "rounds": len(stats.data),
    }


@pytest.fixture(scope="module", autouse=True)
def _kernel_report():
    yield
    if not _RESULTS:
        return
    from repro.viz.export import results_directory

    path = results_directory() / "BENCH_kernels.json"
    payload = {"n_particles": N_PARTICLES, "kernels": dict(sorted(_RESULTS.items()))}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nkernel report: {path}")


@pytest.fixture(scope="module")
def world():
    return build_drone_maze_world()


@pytest.fixture(scope="module")
def field(world):
    return DistanceField.build(world.grid, 1.5)


@pytest.fixture(scope="module")
def populated_particles(world):
    particles = ParticleSet(N_PARTICLES)
    particles.init_uniform(world.grid, make_rng(0, "bench"))
    return particles


@pytest.fixture(scope="module")
def beam_bundle(world):
    pose = Pose2D(world.main.origin_x + 2.0, world.main.origin_y + 0.5, 0.3)
    spec = TofSensorSpec(interference_prob=0.0, edge_row_dropout_prob=0.0)
    frame = TofSensor(spec, "tof-front", make_rng(1, "bench")).measure(
        world.grid, pose, 0.0
    )
    return extract_beams([frame], MclConfig(particle_count=N_PARTICLES))


def test_kernel_observation(benchmark, populated_particles, beam_bundle, field):
    config = MclConfig(particle_count=N_PARTICLES)

    def run():
        apply_observation_model(populated_particles, beam_bundle, field, config)

    benchmark(run)
    _record(benchmark, "observation")


def test_kernel_motion(benchmark, populated_particles):
    config = MclConfig(particle_count=N_PARTICLES)
    rng = make_rng(2, "bench")
    increment = Pose2D(0.1, 0.0, 0.05)

    def run():
        apply_motion_model(populated_particles, increment, config, rng)

    benchmark(run)
    _record(benchmark, "motion")


def test_kernel_resampling_serial(benchmark):
    rng = make_rng(3, "bench")
    weights = rng.random(N_PARTICLES) + 1e-9
    u0 = draw_wheel_offset(rng, N_PARTICLES)
    benchmark(lambda: systematic_resample(weights, u0))
    _record(benchmark, "resampling_serial")


def test_kernel_resampling_parallel_wheel(benchmark):
    rng = make_rng(4, "bench")
    weights = rng.random(N_PARTICLES) + 1e-9
    u0 = draw_wheel_offset(rng, N_PARTICLES)
    benchmark(lambda: parallel_systematic_resample(weights, u0, 8))
    _record(benchmark, "resampling_parallel_wheel")


def test_kernel_pose_estimate(benchmark, populated_particles):
    benchmark(lambda: estimate_pose(populated_particles))
    _record(benchmark, "pose_estimate")


def test_kernel_edt_build(benchmark):
    grid = main_drone_maze()
    benchmark.pedantic(
        lambda: euclidean_distance_field(grid, r_max=1.5), rounds=3, iterations=1
    )
    _record(benchmark, "edt_build")


def test_kernel_particle_gather(benchmark, populated_particles):
    rng = make_rng(5, "bench")
    indices = rng.integers(0, N_PARTICLES, size=N_PARTICLES)

    def run():
        populated_particles.swap_from_indices(indices)

    benchmark(run)
    _record(benchmark, "particle_gather")
