"""Fig. 10 — parallel speedup per MCL step and in total, vs particles.

Regenerates the speedup curves of the calibrated GAP9 latency model and
cross-checks their structure against the behavioural cluster simulator
(fork/join overheads + the weight-dependent resampling wheel).

Expected shape (paper Sec. IV-D):
* observation and motion saturate close to 7-8x,
* pose computation rises from ~3x to ~7.8x,
* resampling scales worst, but exceeds 5x at high N,
* total speedup improves with N up to ~7x.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.core.config import PAPER_PARTICLE_COUNTS
from repro.core.resampling import parallel_systematic_resample
from repro.engine.kernels import systematic_resample
from repro.soc.multicore import ClusterSimulator
from repro.soc.perf import Gap9PerfModel, MclStep
from repro.viz.ascii import line_plot
from repro.viz.export import export_series
from repro.viz.tables import format_table

COUNTS = list(PAPER_PARTICLE_COUNTS)


def test_fig10_speedups(benchmark):
    model = Gap9PerfModel()

    def compute():
        series = {}
        for step in MclStep:
            series[step.value] = [model.step_speedup(step, n) for n in COUNTS]
        series["total"] = [model.total_speedup(n) for n in COUNTS]
        return series

    series = benchmark(compute)

    rows = [
        [str(n)] + [f"{series[key][i]:.2f}x" for key in series]
        for i, n in enumerate(COUNTS)
    ]
    print()
    print(
        format_table(
            ["N"] + list(series),
            rows,
            title="Fig. 10 — speedup of 8 cores over 1 core (GAP9 model)",
            footnote="paper: total improves to ~7x; resampling scales worst",
        )
    )
    plot = {
        key: (list(map(float, COUNTS)), values) for key, values in series.items()
    }
    print()
    print(line_plot(plot, title="Fig. 10 — speedup", log_x=True, y_label="x"))
    export_series("fig10_speedup", plot, x_label="particles", y_label="speedup")

    # Shape assertions straight from the paper's text.
    assert series["total"][-1] > 6.5
    assert all(b >= a - 1e-9 for a, b in zip(series["total"], series["total"][1:]))
    assert series[MclStep.RESAMPLING.value][-1] > 5.0
    for i, n in enumerate(COUNTS[:3]):  # small N: resampling is the worst
        others = [series[s.value][i] for s in MclStep if s is not MclStep.RESAMPLING]
        assert series[MclStep.RESAMPLING.value][i] <= min(others) + 1e-9


def test_fig10_structural_crosscheck(benchmark):
    """The behavioural cluster simulator shows the same qualitative shape."""
    sim = ClusterSimulator()

    def compute():
        even = [sim.structural_speedup(n, cycles_per_particle=50.0) for n in COUNTS]
        resample = []
        rng = make_rng(0, "fig10")
        for n in COUNTS:
            # Concentrated posterior: weights after convergence are peaky.
            weights = rng.random(n) ** 4 + 1e-9
            u0 = float(rng.uniform(0, 1.0 / n))
            # The parallel wheel the simulator schedules must draw the
            # same particles as the engine's serial kernel (Fig. 4).
            np.testing.assert_array_equal(
                parallel_systematic_resample(weights, u0).indices,
                systematic_resample(weights, u0),
            )
            trace = sim.simulate_resampling(weights, u0)
            serial_cycles = n * (4.0 + 30.0)  # scan + draw, one core
            resample.append(serial_cycles / trace.makespan_cycles)
        return even, resample

    even, resample = benchmark.pedantic(compute, rounds=1, iterations=1)
    print()
    rows = [
        [n, f"{e:.2f}x", f"{r:.2f}x"] for n, e, r in zip(COUNTS, even, resample)
    ]
    print(
        format_table(
            ["N", "even step", "resampling wheel"],
            rows,
            title="Cluster-simulator structural speedups (8 workers)",
            footnote="resampling trails the evenly chunked steps: weight-dependent load",
        )
    )
    # Evenly chunked steps approach 8x; the wheel stays behind at every N.
    assert even[-1] > 7.5
    assert all(r <= e + 1e-9 for e, r in zip(even, resample))
