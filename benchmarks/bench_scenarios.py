"""Per-family scenario benchmark: generation cost, accuracy, throughput.

For every built-in scenario family this bench

1. times the full deterministic generation pipeline (layout -> plan ->
   simulate -> record),
2. sweeps the generated scenario's (fp32, N) cells through both filter
   backends, timing each, and
3. asserts the backends produced identical per-run metrics (generated
   scenarios are first-class citizens of the bitwise-equivalence
   contract).

Results go to ``results/BENCH_scenarios.json``: per family the
generation seconds, per-backend sweep seconds, and the batched sweep's
accuracy (mean ATE / success rate per cell).
"""

from __future__ import annotations

import json
import math
import time

from conftest import current_scale

from repro.common.rng import PAPER_SEEDS
from repro.eval.aggregate import SweepProtocol
from repro.eval.bench import _run_signature
from repro.eval.sweep_engine import DistanceFieldCache, SweepEngine
from repro.scenarios import ScenarioSpec, available_families, build_scenario
from repro.viz.export import results_directory
from repro.viz.tables import format_table

PARTICLE_COUNTS = [64, 256]
VARIANTS = ["fp32"]


def scenario_protocol() -> SweepProtocol:
    seeds = {"smoke": (0,), "paper": PAPER_SEEDS}.get(
        current_scale(), PAPER_SEEDS[:2]
    )
    return SweepProtocol(sequence_count=1, seeds=tuple(seeds))


def scenario_flight_s() -> float:
    return {"smoke": 20.0, "paper": 80.0}.get(current_scale(), 40.0)


def test_scenario_families(benchmark):
    protocol = scenario_protocol()
    flight_s = scenario_flight_s()
    specs = [
        ScenarioSpec.of(family, 0, flight_s=flight_s)
        for family in available_families()
    ]

    def run() -> dict:
        field_cache = DistanceFieldCache()
        report: dict = {
            "protocol": {
                "seeds": list(protocol.seeds),
                "flight_s": flight_s,
                "variants": VARIANTS,
                "particle_counts": PARTICLE_COUNTS,
            },
            "families": {},
        }
        for spec in specs:
            start = time.perf_counter()
            scenario = build_scenario(spec, cache=False)
            generation_s = time.perf_counter() - start

            timings: dict[str, float] = {}
            sweeps = {}
            signatures = {}
            for backend in ("reference", "batched"):
                engine = SweepEngine(backend=backend, field_cache=field_cache)
                start = time.perf_counter()
                result = engine.run(
                    scenario.grid,
                    [scenario.sequence],
                    VARIANTS,
                    PARTICLE_COUNTS,
                    protocol=protocol,
                )
                timings[backend] = time.perf_counter() - start
                sweeps[backend] = result
                signatures[backend] = [
                    _run_signature(run_result)
                    for cell in result.cells.values()
                    for run_result in cell.runs
                ]

            batched = sweeps["batched"]
            cells = {}
            for (variant, count), cell in batched.cells.items():
                ate = cell.aggregate.mean_ate_m
                cells[f"{variant}/N={count}"] = {
                    "ate_m": None if math.isnan(ate) else ate,
                    "success_rate": cell.aggregate.success_rate,
                    "runs": cell.aggregate.run_count,
                }
            report["families"][spec.family] = {
                "spec": spec.id,
                "frames": len(scenario.sequence),
                "generation_s": generation_s,
                "sweep_s": timings,
                "equivalent": signatures["reference"] == signatures["batched"],
                "cells": cells,
            }
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for family, entry in report["families"].items():
        ref_s, bat_s = entry["sweep_s"]["reference"], entry["sweep_s"]["batched"]
        accuracy = entry["cells"].get("fp32/N=256", {})
        ate = accuracy.get("ate_m")
        rows.append(
            [
                family,
                f"{entry['generation_s']:.2f}s",
                f"{ref_s:.2f}s",
                f"{bat_s:.2f}s",
                "n/a" if ate is None else f"{ate:.3f}",
                f"{100 * accuracy.get('success_rate', 0.0):.0f}%",
                "yes" if entry["equivalent"] else "NO",
            ]
        )
    print()
    print(
        format_table(
            ["family", "generate", "ref sweep", "bat sweep", "ate@256", "succ@256", "bitwise"],
            rows,
            title=(
                f"Scenario families — {len(report['protocol']['seeds'])} seeds, "
                f"{report['protocol']['flight_s']:.0f} s flights"
            ),
            footnote="sweep cells: fp32 x N in {64, 256}; one core",
        )
    )

    path = results_directory() / "BENCH_scenarios.json"
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report: {path}")

    for family, entry in report["families"].items():
        assert entry["equivalent"], f"backends disagreed on scenario {family}"
