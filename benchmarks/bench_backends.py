"""Backend throughput: reference vs batched on the Fig. 6/7 sweep grid.

Times the same sweep cells under the sequential ``reference`` backend
and the ``(R, N)``-stacked ``batched`` backend, verifies they produced
identical per-run metrics, prints the per-cell table, and writes the
machine-readable report to ``results/BENCH_backends.json``.

The cell grid covers the lower half of the paper's particle sweep with
the full 6-seed repetition (``REPRO_BACKEND_COUNTS`` / ``REPRO_SCALE``
override it).  Expected shape on one core:

* small N (64): evaluation throughput is dispatch/replay bound — the
  batched backend amortizes beam extraction, frame materialization and
  kernel dispatch over all seeds and wins >= 3x;
* large N (>= 1024): the per-element EDT/transform math dominates and is
  bitwise-pinned, so both backends converge to the same wall-clock
  (the batched chunking keeps working sets cache-resident either way).
"""

from __future__ import annotations

import os

from conftest import current_scale

from repro.common.rng import PAPER_SEEDS
from repro.eval.aggregate import SweepProtocol
from repro.eval.bench import compare_backends, write_backend_report
from repro.viz.tables import format_table

DEFAULT_COUNTS = [64, 256, 1024]
VARIANTS = ["fp32", "fp16qm"]


def bench_counts() -> list[int]:
    raw = os.environ.get("REPRO_BACKEND_COUNTS")
    if raw:
        return [int(part) for part in raw.split(",") if part.strip()]
    if current_scale() == "smoke":
        return [64, 256]
    return list(DEFAULT_COUNTS)


def bench_protocol() -> SweepProtocol:
    """Multi-seed protocol: the batching dimension of a sweep cell.

    Always repeats over the paper's six seeds (that is what a cell's
    ``(R, N)`` stack is made of); the sequence count follows the scale.
    """
    sequence_count = {"smoke": 1, "paper": 6}.get(current_scale(), 3)
    return SweepProtocol(sequence_count=sequence_count, seeds=PAPER_SEEDS)


def test_backend_throughput(benchmark, world, sequences):
    counts = bench_counts()
    protocol = bench_protocol()

    def compare():
        return compare_backends(
            world.grid,
            sequences,
            variants=VARIANTS,
            particle_counts=counts,
            protocol=protocol,
        )

    report = benchmark.pedantic(compare, rounds=1, iterations=1)

    backends = report["backends"]
    rows = []
    for cell in report["timings"][backends[0]]["cells_s"]:
        ref_s = report["timings"]["reference"]["cells_s"][cell]
        bat_s = report["timings"]["batched"]["cells_s"][cell]
        rows.append([cell, f"{ref_s:.2f}s", f"{bat_s:.2f}s", f"{ref_s / bat_s:.2f}x"])
    ref_total = report["timings"]["reference"]["total_s"]
    bat_total = report["timings"]["batched"]["total_s"]
    rows.append(["total", f"{ref_total:.2f}s", f"{bat_total:.2f}s",
                 f"{ref_total / bat_total:.2f}x"])
    print()
    print(
        format_table(
            ["cell", "reference", "batched", "speedup"],
            rows,
            title=(
                f"Backend sweep timing — {len(protocol.seeds)} seeds x "
                f"{protocol.sequence_count} sequences per cell"
            ),
            footnote="identical per-run metrics asserted; one core",
        )
    )
    path = write_backend_report(report)
    print(f"report: {path}")

    # The backends must agree run-for-run — this is the hard guarantee
    # that makes the throughput comparison meaningful at all.
    assert report["equivalent"], "backends disagreed on per-run metrics"

    # Throughput shape: the smallest-N cells are evaluation-bound and the
    # batched engine must win decisively there; overall it must never be
    # slower.  (Margins are loose: shared-machine timing jitter.)
    smallest = min(counts)
    small_cells = [c for c in report["timings"]["reference"]["cells_s"]
                   if c.endswith(f"N={smallest}")]
    for cell in small_cells:
        ratio = (
            report["timings"]["reference"]["cells_s"][cell]
            / report["timings"]["batched"]["cells_s"][cell]
        )
        assert ratio > 1.5, f"batched should clearly win {cell}, got {ratio:.2f}x"
    assert bat_total < ref_total * 1.05, "batched must not lose overall"
