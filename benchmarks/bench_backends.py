"""Backend throughput: reference vs batched vs fast on the Fig. 6/7 grid.

Times the same sweep cells under the sequential ``reference`` backend,
the ``(R, N)``-stacked ``batched`` backend and — when a fused-kernel
provider is available — the ``fast`` backend, verifies they produced
identical per-run metrics, prints the per-cell table, and writes the
machine-readable report to ``results/BENCH_backends.json``.

The cell grid covers the lower half of the paper's particle sweep with
the full 6-seed repetition (``REPRO_BACKEND_COUNTS`` / ``REPRO_SCALE``
override it).  Expected shape on one core:

* small N (64): evaluation throughput is dispatch/replay bound — the
  batched backend amortizes beam extraction, frame materialization and
  kernel dispatch over all seeds and wins >= 3x; the fast backend
  inherits that run loop, so it must never regress against batched;
* large N (>= 1024): the per-element EDT/transform math dominates.  The
  batched backend converges to the reference wall-clock there (both are
  wide-numpy bound), while the fast backend's fused per-row kernels —
  no ``(R, N, K)`` temporaries, one vectorized transform+gather+tree
  pass per row — must beat the reference >= 5x at fp32/N=1024.

The report also records ``cpu_count`` and, on multi-core hosts, one
process-parallel (``jobs > 1``) sweep timing row for the fastest
backend.
"""

from __future__ import annotations

import os

from conftest import current_scale

from repro.common.rng import PAPER_SEEDS
from repro.eval.aggregate import SweepProtocol
from repro.eval.bench import compare_backends, default_bench_backends, write_backend_report
from repro.viz.tables import format_table

DEFAULT_COUNTS = [64, 256, 1024]
VARIANTS = ["fp32", "fp16qm"]

#: The tentpole throughput bar: the fused backend against the reference
#: scalar loop on the biggest dual-precision cell of the default grid.
FAST_SPEEDUP_CELL = "fp32/N=1024"
FAST_SPEEDUP_MIN = 5.0


def bench_counts() -> list[int]:
    raw = os.environ.get("REPRO_BACKEND_COUNTS")
    if raw:
        return [int(part) for part in raw.split(",") if part.strip()]
    if current_scale() == "smoke":
        return [64, 256]
    return list(DEFAULT_COUNTS)


def bench_protocol() -> SweepProtocol:
    """Multi-seed protocol: the batching dimension of a sweep cell.

    Always repeats over the paper's six seeds (that is what a cell's
    ``(R, N)`` stack is made of); the sequence count follows the scale.
    """
    sequence_count = {"smoke": 1, "paper": 6}.get(current_scale(), 3)
    return SweepProtocol(sequence_count=sequence_count, seeds=PAPER_SEEDS)


def test_backend_throughput(benchmark, world, sequences):
    counts = bench_counts()
    protocol = bench_protocol()
    backends = default_bench_backends()

    def compare():
        return compare_backends(
            world.grid,
            sequences,
            variants=VARIANTS,
            particle_counts=counts,
            protocol=protocol,
            backends=backends,
        )

    report = benchmark.pedantic(compare, rounds=1, iterations=1)

    cells = report["timings"]["reference"]["cells_s"]
    rows = []
    for cell in cells:
        ref_s = cells[cell]
        row = [cell, f"{ref_s:.2f}s"]
        for backend in backends[1:]:
            b_s = report["timings"][backend]["cells_s"][cell]
            row.append(f"{b_s:.2f}s")
            row.append(f"{ref_s / b_s:.2f}x")
        rows.append(row)
    ref_total = report["timings"]["reference"]["total_s"]
    total_row = ["total", f"{ref_total:.2f}s"]
    for backend in backends[1:]:
        b_total = report["timings"][backend]["total_s"]
        total_row.append(f"{b_total:.2f}s")
        total_row.append(f"{ref_total / b_total:.2f}x")
    rows.append(total_row)

    header = ["cell", "reference"]
    for backend in backends[1:]:
        header.extend([backend, "speedup"])
    parallel = report.get("parallel")
    footnote = (
        f"identical per-run metrics asserted; {report['cpu_count']} core(s)"
    )
    if parallel:
        footnote += (
            f"; {parallel['backend']}@jobs={parallel['jobs']}: "
            f"{parallel['total_s']:.2f}s"
        )
    print()
    print(
        format_table(
            header,
            rows,
            title=(
                f"Backend sweep timing — {len(protocol.seeds)} seeds x "
                f"{protocol.sequence_count} sequences per cell"
            ),
            footnote=footnote,
        )
    )
    path = write_backend_report(report)
    print(f"report: {path}")

    # The backends must agree run-for-run — this is the hard guarantee
    # that makes the throughput comparison meaningful at all.
    assert report["equivalent"], "backends disagreed on per-run metrics"

    # Throughput shape: the smallest-N cells are evaluation-bound and the
    # batched engine must win decisively there; overall it must never be
    # slower.  (Margins are loose: shared-machine timing jitter.)
    smallest = min(counts)
    small_cells = [c for c in cells if c.endswith(f"N={smallest}")]
    bat_total = report["timings"]["batched"]["total_s"]
    for cell in small_cells:
        ratio = cells[cell] / report["timings"]["batched"]["cells_s"][cell]
        assert ratio > 1.5, f"batched should clearly win {cell}, got {ratio:.2f}x"
    assert bat_total < ref_total * 1.05, "batched must not lose overall"

    if "fast" not in backends:
        return

    # The fused backend inherits the batched run loop, so its small-N
    # dispatch cost must stay within noise of batched (no regression
    # beyond 5%)...
    for cell in small_cells:
        fast_s = report["timings"]["fast"]["cells_s"][cell]
        bat_s = report["timings"]["batched"]["cells_s"][cell]
        assert fast_s < bat_s * 1.05, (
            f"fast regressed vs batched on {cell}: {fast_s:.2f}s vs {bat_s:.2f}s"
        )
    # ...and the big dual-precision cell is where the fused kernels must
    # earn their keep against the reference loop.
    if FAST_SPEEDUP_CELL in cells:
        speedup = cells[FAST_SPEEDUP_CELL] / report["timings"]["fast"]["cells_s"][
            FAST_SPEEDUP_CELL
        ]
        assert speedup >= FAST_SPEEDUP_MIN, (
            f"fast must beat reference >= {FAST_SPEEDUP_MIN:.0f}x on "
            f"{FAST_SPEEDUP_CELL}, got {speedup:.2f}x"
        )
