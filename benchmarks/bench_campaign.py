"""Campaign-layer benchmark: fresh run, resume, and store determinism.

Times three things about the campaign layer on one small scenario grid:

1. **fresh** — a cold campaign run (scenario generation amortized by the
   registry cache, every cell executed and streamed to the store),
2. **resume** — re-running the completed campaign with ``resume=True``
   (must skip every cell by content key; near-instant),
3. **reference** — the same campaign under the ``reference`` backend
   into a second store.

It then asserts the store-level determinism contract: the resume touched
nothing, and the ``reference`` store is **byte-identical** to the
``batched`` one, cell file by cell file.

Results go to ``results/BENCH_campaign.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import current_scale

from repro.eval.campaign import CampaignSpec, run_campaign
from repro.eval.store import CampaignStore
from repro.viz.export import results_directory
from repro.viz.tables import format_table

SCENARIOS = ("corridor:2", "office:1", "hall:1")
VARIANTS = ("fp32", "fp16qm")


def campaign_grid() -> tuple[tuple[int, ...], tuple[int, ...], float]:
    """(particle counts, seeds, flight seconds) for the current scale."""
    if current_scale() == "smoke":
        return (32,), (0,), 10.0
    if current_scale() == "paper":
        return (64, 256), (0, 1, 2, 3, 4, 5), 60.0
    return (32, 64), (0, 1), 20.0


def _store_bytes(store: CampaignStore) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in sorted(store.cells_dir.glob("*.json"))
    }


def test_campaign_layer(benchmark, tmp_path):
    counts, seeds, flight_s = campaign_grid()
    scenarios = tuple(f"{spec}:flight_s={flight_s}" for spec in SCENARIOS)

    def spec(name: str) -> CampaignSpec:
        return CampaignSpec(
            name=name,
            scenarios=scenarios,
            variants=VARIANTS,
            particle_counts=counts,
            seeds=seeds,
        )

    def run() -> dict:
        batched_store = CampaignStore("bench", root=tmp_path / "batched")
        reference_store = CampaignStore("bench", root=tmp_path / "reference")

        start = time.perf_counter()
        fresh = run_campaign(spec("bench"), backend="batched", store=batched_store)
        fresh_s = time.perf_counter() - start

        start = time.perf_counter()
        resumed = run_campaign(
            spec("bench"), backend="batched", store=batched_store, resume=True
        )
        resume_s = time.perf_counter() - start

        start = time.perf_counter()
        run_campaign(spec("bench"), backend="reference", store=reference_store)
        reference_s = time.perf_counter() - start

        return {
            "grid": {
                "scenarios": list(scenarios),
                "variants": list(VARIANTS),
                "particle_counts": list(counts),
                "seeds": list(seeds),
            },
            "cells": fresh.total_cells,
            "fresh_s": fresh_s,
            "resume_s": resume_s,
            "reference_s": reference_s,
            "resume_skipped": resumed.skipped,
            "resume_executed": resumed.executed,
            "stores_identical": _store_bytes(batched_store)
            == _store_bytes(reference_store),
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["phase", "seconds", "cells"],
            [
                ["fresh (batched)", f"{report['fresh_s']:.2f}", report["cells"]],
                [
                    "resume (all cached)",
                    f"{report['resume_s']:.2f}",
                    f"{report['resume_skipped']} skipped",
                ],
                ["fresh (reference)", f"{report['reference_s']:.2f}", report["cells"]],
            ],
            title="Campaign layer — fresh vs resume vs reference backend",
            footnote=(
                "fresh includes one-time scenario generation (cached for the "
                "later phases); reference/batched stores byte-identical: "
                f"{report['stores_identical']}"
            ),
        )
    )

    path = results_directory() / "BENCH_campaign.json"
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report: {path}")

    assert report["resume_executed"] == 0, "resume re-ran completed cells"
    assert report["resume_skipped"] == report["cells"]
    assert report["stores_identical"], "backend broke store determinism"
    assert report["resume_s"] < report["fresh_s"]
