"""Shared fixtures of the benchmark harness.

Scale control
-------------
``REPRO_SCALE`` selects the evaluation protocol of the accuracy benches:

* ``smoke``  — 1 sequence x 1 seed, reduced particle grid (CI sanity),
* ``quick``  — 3 sequences x 2 seeds, full particle grid (default),
* ``paper``  — the full 6 sequences x 6 seeds protocol of the paper.

``REPRO_BACKEND`` selects the filter backend the sweeps execute through
(``batched`` by default; every backend produces identical results, so
the choice only moves wall-clock).

The expensive accuracy sweep is executed once per session (inside the
Fig. 6/7 bench) and shared with the Fig. 8 bench through the session
cache below.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import PAPER_PARTICLE_COUNTS
from repro.dataset.sequences import load_all_sequences
from repro.eval.aggregate import SweepProtocol
from repro.maps.maze import build_drone_maze_world


def current_scale() -> str:
    return os.environ.get("REPRO_SCALE", "quick").lower()


def current_backend() -> str:
    return os.environ.get("REPRO_BACKEND", "batched").lower()


def accuracy_protocol() -> SweepProtocol:
    scale = current_scale()
    if scale == "smoke":
        return SweepProtocol(sequence_count=1, seeds=(0,))
    if scale == "paper":
        return SweepProtocol(sequence_count=6, seeds=(0, 1, 2, 3, 4, 5))
    return SweepProtocol(sequence_count=3, seeds=(0, 1))


def particle_grid() -> list[int]:
    if current_scale() == "smoke":
        return [64, 1024, 4096]
    return list(PAPER_PARTICLE_COUNTS)


@pytest.fixture(scope="session")
def world():
    return build_drone_maze_world()


@pytest.fixture(scope="session")
def sequences(world):
    return load_all_sequences(world)


#: Session-wide cache: the Fig. 6/7 sweep result, reused by Fig. 8.
_SESSION_CACHE: dict = {}


@pytest.fixture(scope="session")
def sweep_cache():
    return _SESSION_CACHE
