"""Fig. 9 — particle count vs map size fitting in GAP9's L1 / L2.

Regenerates the memory trade-off curves: for map sizes 2^1 .. 2^11 m² at
0.05 m/cell, the maximum particle population that fits next to the map in
L1 (128 kB) and L2 (1.5 MB), for the fp32 and fp16qm representations.

Expected shape: the quantized/fp16 lines sit strictly above the fp32
lines, L2 lines above L1 lines, and each line collapses to zero once the
map alone exceeds the memory level.
"""

from __future__ import annotations

from repro.common.precision import PrecisionMode
from repro.soc.memory import MemoryLevel, max_particles
from repro.viz.ascii import line_plot
from repro.viz.export import export_series
from repro.viz.tables import format_table

MAP_SIZES_M2 = [2.0**e for e in range(1, 12)]

SERIES_SPECS = [
    ("fp32 L1", PrecisionMode.FP32, MemoryLevel.L1),
    ("fp16qm L1", PrecisionMode.FP16_QM, MemoryLevel.L1),
    ("fp32 L2", PrecisionMode.FP32, MemoryLevel.L2),
    ("fp16qm L2", PrecisionMode.FP16_QM, MemoryLevel.L2),
]


def test_fig9_memory_tradeoff(benchmark):
    def compute():
        table = {}
        for label, mode, level in SERIES_SPECS:
            table[label] = [
                max_particles(area, mode, level) for area in MAP_SIZES_M2
            ]
        return table

    table = benchmark(compute)

    rows = []
    for index, area in enumerate(MAP_SIZES_M2):
        rows.append(
            [f"{area:.0f}"]
            + [str(table[label][index]) for label, __, __ in SERIES_SPECS]
        )
    print()
    print(
        format_table(
            ["map m2"] + [label for label, __, __ in SERIES_SPECS],
            rows,
            title="Fig. 9 — max particles vs map size (0.05 m cells)",
            footnote="L1 = 128 kB, L2 = 1.5 MB; fp32: 5 B/cell + 32 B/particle, "
            "fp16qm: 2 B/cell + 16 B/particle",
        )
    )
    plot_series = {
        label: (
            [a for a, n in zip(MAP_SIZES_M2, table[label]) if n > 0],
            [float(n) for n in table[label] if n > 0],
        )
        for label, __, __ in SERIES_SPECS
    }
    print()
    print(
        line_plot(
            plot_series, title="Fig. 9 — max particles (log2 map size)", log_x=True
        )
    )
    export_series(
        "fig9_memory",
        {k: (list(map(float, MAP_SIZES_M2)), list(map(float, v))) for k, v in table.items()},
        x_label="map_m2",
        y_label="max_particles",
    )

    # Shape assertions.
    for index in range(len(MAP_SIZES_M2)):
        assert table["fp16qm L1"][index] >= table["fp32 L1"][index]
        assert table["fp16qm L2"][index] >= table["fp32 L2"][index]
        assert table["fp32 L2"][index] >= table["fp32 L1"][index]
    # Paper operating points: 1024 particles + 31.2 m² quantized map in L1;
    # 16384 particles only in L2.
    assert max_particles(31.2, PrecisionMode.FP16_QM, MemoryLevel.L1) >= 1024
    assert max_particles(31.2, PrecisionMode.FP32, MemoryLevel.L1) < 16384
    assert max_particles(31.2, PrecisionMode.FP32, MemoryLevel.L2) >= 16384
    # The L1 fp32 line dies at the 128 m² map (5 B/cell x 51200 cells
    # overflows 128 kB); fp16qm still fits there — the crossover Fig. 9
    # shows between the blue and yellow lines.
    assert table["fp32 L1"][6] == 0  # 128 m²
    assert table["fp16qm L1"][6] > 0
