"""Ablation — sensitivity to the EDT truncation distance r_max.

The paper truncates the distance transform at r_max = 1.5 m, which both
caps the memory cost of the quantized map (the uint8 full scale) and
flattens the likelihood far from walls.  This ablation sweeps r_max and
reports accuracy; the paper's choice should sit in the usable plateau.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import MclConfig
from repro.eval.runner import run_localization
from repro.viz.export import write_csv
from repro.viz.tables import format_table

R_MAX_VALUES = (0.5, 1.0, 1.5, 2.5)
SEEDS = (0, 1)


def test_ablation_rmax(benchmark, world, sequences):
    sequence = sequences[1]

    def compute():
        outcomes = {}
        for r_max in R_MAX_VALUES:
            config = dataclasses.replace(
                MclConfig(particle_count=4096), r_max=r_max
            )
            outcomes[r_max] = [
                run_localization(world.grid, sequence, config, seed=seed)
                for seed in SEEDS
            ]
        return outcomes

    outcomes = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    csv_rows = []
    for r_max, results in outcomes.items():
        successes = sum(1 for r in results if r.metrics.success)
        ates = [r.metrics.ate_mean_m for r in results if r.metrics.converged]
        conv = [
            r.metrics.convergence_time_s for r in results if r.metrics.converged
        ]
        ate = float(np.mean(ates)) if ates else float("nan")
        rows.append(
            [
                f"{r_max:.1f} m",
                f"{successes}/{len(results)}",
                f"{ate:.3f}" if ates else "n/a",
                f"{np.mean(conv):.1f} s" if conv else "n/a",
            ]
        )
        csv_rows.append([r_max, successes / len(results), ate])

    print()
    print(
        format_table(
            ["r_max", "success", "ATE (m)", "convergence"],
            rows,
            title="Ablation — EDT truncation distance (seq1, N=4096)",
            footnote="paper uses 1.5 m; also the uint8 quantization full scale",
        )
    )
    write_csv("results/ablation_rmax.csv", ["r_max_m", "success_rate", "ate_m"], csv_rows)

    # The paper's 1.5 m must be a working configuration.
    paper_runs = outcomes[1.5]
    assert any(r.metrics.success for r in paper_runs)
