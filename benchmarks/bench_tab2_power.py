"""Table II — average power and execution time at the four operating
points, plus the Sec. IV-E whole-drone power budget (the 7 % claim).

Power comes from the DVFS model calibrated on the paper's three measured
clock/power pairs; execution times from the Table-I-calibrated latency
model.  Derived results asserted: the minimum real-time clocks (12 MHz at
1024 particles, 200 MHz at 16384) and the 981 mW / ~7 % system budget.
"""

from __future__ import annotations

from repro.board.system import system_power_budget
from repro.soc.perf import Gap9PerfModel
from repro.soc.power import Gap9PowerModel
from repro.viz.export import write_csv
from repro.viz.tables import format_table

#: Paper Table II: (clock Hz, particles) -> (power mW, execution ms).
PAPER_TABLE_II = {
    (400e6, 1024): (61, 1.901),
    (12e6, 1024): (13, 59.898),
    (400e6, 16384): (61, 30.880),
    (200e6, 16384): (38, 61.524),
}


def test_tab2_operating_points(benchmark):
    power = Gap9PowerModel()

    def compute():
        return {
            key: power.operating_point(key[0], key[1]) for key in PAPER_TABLE_II
        }

    points = benchmark(compute)

    rows = []
    csv_rows = []
    for (freq, count), (ref_mw, ref_ms) in PAPER_TABLE_II.items():
        op = points[(freq, count)]
        rows.append(
            [
                f"{freq / 1e6:.0f} MHz",
                count,
                f"{op['avg_power_mw']:.0f} / {ref_mw}",
                f"{op['execution_time_ms']:.3f} / {ref_ms}",
                f"{op['energy_per_update_uj']:.0f} uJ",
            ]
        )
        csv_rows.append(
            [freq / 1e6, count, op["avg_power_mw"], ref_mw, op["execution_time_ms"], ref_ms]
        )
        assert abs(op["avg_power_mw"] - ref_mw) / ref_mw <= 0.05
        assert abs(op["execution_time_ms"] - ref_ms) / ref_ms <= 0.06

    print()
    print(
        format_table(
            ["clock", "particles", "power mW: model/paper", "exec ms: model/paper", "energy"],
            rows,
            title="Table II — MCL operating points, model vs paper",
        )
    )
    write_csv(
        "results/tab2_power.csv",
        ["freq_mhz", "particles", "model_mw", "paper_mw", "model_ms", "paper_ms"],
        csv_rows,
    )

    # Minimum real-time clocks implied by the 67 ms budget.
    f_1024 = Gap9PerfModel.min_realtime_frequency_hz(1024) / 1e6
    f_16384 = Gap9PerfModel.min_realtime_frequency_hz(16384) / 1e6
    print(f"\nminimum real-time clock: {f_1024:.1f} MHz @1024, {f_16384:.1f} MHz @16384")
    print("paper chooses 12 MHz and 200 MHz as the catalogue operating points")
    assert f_1024 <= 12.0
    assert f_16384 <= 200.0


def test_system_power_budget(benchmark):
    budget = benchmark(system_power_budget)
    rows = [
        ["motors (hover)", f"{budget.motors_w * 1e3:.0f} mW"],
        ["Crazyflie electronics", f"{budget.electronics_w * 1e3:.0f} mW"],
        ["2x VL53L5CX", f"{budget.tof_sensors_w * 1e3:.0f} mW"],
        ["GAP9 @ 400 MHz", f"{budget.gap9_w * 1e3:.0f} mW"],
        ["sensing + processing", f"{budget.sensing_processing_w * 1e3:.0f} mW"],
        ["fraction of total", f"{budget.sensing_processing_fraction * 100:.1f} %"],
    ]
    print()
    print(
        format_table(
            ["component", "power"],
            rows,
            title="Sec. IV-E — whole-drone power budget",
            footnote="paper: 981 mW sensing+processing, ~7 % of the drone's power",
        )
    )
    assert abs(budget.sensing_processing_w - 0.981) < 0.002
    assert 0.065 <= budget.sensing_processing_fraction <= 0.075
