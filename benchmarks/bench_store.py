"""Store-tier benchmark: file vs packed at campaign scale.

Builds the *same* synthetic campaign (cell payload bytes a pure function
of the cell key, exactly as real campaigns guarantee) in both store
tiers, then measures the three operations the packed tier exists for:

1. **resume scan** — ``completed_keys()`` on a cold store: a directory
   walk with per-file JSON validation (file tier) vs sealed-segment
   index sidecar reads (packed tier),
2. **streaming report** — a full ``stream_cells()`` +
   :class:`~repro.eval.aggregate.RunningCellStats` fold, the
   ``campaign report`` hot path,
3. **byte equivalence** — every cell read back from both tiers must be
   byte-identical (the cross-tier contract ``campaign compact`` and
   tier-mixed shard merges rest on).

Every measured phase runs in its own subprocess so the reported peak
RSS (``ru_maxrss``) belongs to that phase alone; the streaming report is
additionally run against a 10x smaller packed store to check that its
memory is flat in cell count, not proportional to it.

Scale: ``smoke`` = 2 000 cells, ``quick`` = 20 000, ``paper`` = 100 000.
Results go to ``results/BENCH_store.json``.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from pathlib import Path

SCENARIO_SLOTS = 40


def synthetic_key(index: int) -> str:
    return (
        f"s{index % SCENARIO_SLOTS:03d}_fp32_N={64 << (index % 3)}"
        f"_seed={index // SCENARIO_SLOTS}"
    )


def synthetic_payload_bytes(index: int) -> bytes:
    """Deterministic cell bytes shaped like a real campaign payload."""
    from repro.eval.store import canonical_json_bytes

    key = synthetic_key(index)
    digest = hashlib.sha256(key.encode("ascii")).hexdigest()
    runs = 4
    converged = int(digest[:2], 16) % (runs + 1)
    payload = {
        "cell": {
            "scenario": f"s{index % SCENARIO_SLOTS:03d}",
            "variant": "fp32",
            "particle_count": 64 << (index % 3),
            "seed": index // SCENARIO_SLOTS,
        },
        "aggregate": {
            "runs": runs,
            "converged": converged,
            "success_rate": converged / runs,
            "mean_ate_m": (int(digest[2:6], 16) % 1000) / 1000.0
            if converged
            else None,
        },
        "digest": digest,
    }
    return canonical_json_bytes(payload)


# --------------------------------------------------------------------------
# Subprocess phases: each prints one JSON line with its own timings + RSS.
# --------------------------------------------------------------------------


def _phase_write_file(root: Path, cells: int) -> dict:
    """Populate the file tier (setup only — writes are never compared)."""
    from repro.eval.store import CampaignStore

    store = CampaignStore("bench", root=root, tier="file")
    store.cells_dir.mkdir(parents=True, exist_ok=True)
    elapsed = _timed()
    for index in range(cells):
        # Plain writes, not the atomic tmp+rename path: setup speed only.
        path = store.cells_dir / f"{synthetic_key(index)}.json"
        path.write_bytes(synthetic_payload_bytes(index))
    return {"seconds": elapsed(), "cells": cells}


def _phase_write_packed(root: Path, cells: int) -> dict:
    from repro.eval.store import CampaignStore

    store = CampaignStore("bench", root=root, tier="packed")
    elapsed = _timed()
    with store:
        for index in range(cells):
            store.put_cell_bytes(synthetic_key(index), synthetic_payload_bytes(index))
    return {"seconds": elapsed(), "cells": cells}


def _phase_scan(root: Path, cells: int) -> dict:
    """Cold resume scan: what ``run_campaign(resume=True)`` pays first."""
    from repro.eval.store import CampaignStore

    elapsed = _timed()
    keys = CampaignStore("bench", root=root).completed_keys()
    return {"seconds": elapsed(), "keys": len(keys)}


def _phase_report(root: Path, cells: int) -> dict:
    """Streaming fold over every cell — the ``campaign report`` hot path."""
    from repro.eval.aggregate import RunningCellStats
    from repro.eval.store import CampaignStore

    stats = RunningCellStats()
    elapsed = _timed()
    for __, payload in CampaignStore("bench", root=root).stream_cells():
        stats.add(payload.get("aggregate") or {})
    return {
        "seconds": elapsed(),
        "cells": stats.cells,
        "success_rate": stats.success_rate,
        "mean_ate_m": stats.mean_ate_m,
    }


def _phase_verify(roots: list[Path], cells: int) -> dict:
    """Byte equivalence: the two tiers answer every key identically."""
    from repro.eval.store import CampaignStore

    elapsed = _timed()
    first = dict(CampaignStore("bench", root=roots[0]).iter_cell_bytes())
    second = dict(CampaignStore("bench", root=roots[1]).iter_cell_bytes())
    return {
        "seconds": elapsed(),
        "equivalent": first == second and len(first) == cells,
    }


def _timed():
    import time

    start = time.perf_counter()
    return lambda: time.perf_counter() - start


PHASES = {
    "write-file": _phase_write_file,
    "write-packed": _phase_write_packed,
    "scan": _phase_scan,
    "report": _phase_report,
}


def _run_phase(phase: str, roots: list[Path], cells: int) -> dict:
    """Execute one phase in a fresh subprocess and parse its JSON line."""
    command = [sys.executable, __file__, phase, str(cells)]
    command += [str(root) for root in roots]
    result = subprocess.run(command, capture_output=True, text=True, check=True)
    return json.loads(result.stdout.strip().splitlines()[-1])


def _main() -> None:
    phase, cells = sys.argv[1], int(sys.argv[2])
    roots = [Path(arg) for arg in sys.argv[3:]]
    if phase == "verify":
        report = _phase_verify(roots, cells)
    else:
        report = PHASES[phase](roots[0], cells)
    import resource

    report["ru_maxrss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps(report))


# --------------------------------------------------------------------------
# The benchmark proper.
# --------------------------------------------------------------------------


def store_cells() -> int:
    from conftest import current_scale

    if current_scale() == "smoke":
        return 2_000
    if current_scale() == "paper":
        return 100_000
    return 20_000


def test_store_tiers(benchmark, tmp_path):
    from conftest import current_scale

    from repro.viz.export import results_directory
    from repro.viz.tables import format_table

    cells = store_cells()
    small = max(cells // 10, 100)
    file_root = tmp_path / "file"
    packed_root = tmp_path / "packed"
    small_root = tmp_path / "packed-small"

    def run() -> dict:
        report: dict = {"scale": current_scale(), "cells": cells}
        report["write_file"] = _run_phase("write-file", [file_root], cells)
        report["write_packed"] = _run_phase("write-packed", [packed_root], cells)
        report["write_packed_small"] = _run_phase(
            "write-packed", [small_root], small
        )
        report["scan_file"] = _run_phase("scan", [file_root], cells)
        report["scan_packed"] = _run_phase("scan", [packed_root], cells)
        report["report_file"] = _run_phase("report", [file_root], cells)
        report["report_packed"] = _run_phase("report", [packed_root], cells)
        report["report_packed_small"] = _run_phase("report", [small_root], small)
        report["verify"] = _run_phase("verify", [file_root, packed_root], cells)
        report["scan_speedup"] = (
            report["scan_file"]["seconds"] / report["scan_packed"]["seconds"]
        )
        report["report_rss_ratio_10x_cells"] = (
            report["report_packed"]["ru_maxrss_kb"]
            / report["report_packed_small"]["ru_maxrss_kb"]
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    def row(name: str, block: dict) -> list:
        return [
            name,
            f"{block['seconds']:.3f}",
            f"{block['ru_maxrss_kb'] / 1024:.1f}",
        ]

    print()
    print(
        format_table(
            ["phase", "seconds", "peak MiB"],
            [
                row(f"resume scan, file ({cells} cells)", report["scan_file"]),
                row("resume scan, packed", report["scan_packed"]),
                row("report, file", report["report_file"]),
                row("report, packed", report["report_packed"]),
                row(f"report, packed ({small} cells)", report["report_packed_small"]),
            ],
            title="Store tiers — cold resume scan and streaming report",
            footnote=(
                f"scan speedup {report['scan_speedup']:.1f}x; cross-tier "
                f"byte equivalence: {report['verify']['equivalent']}; each "
                "phase is its own subprocess (RSS is per-phase)"
            ),
        )
    )

    path = results_directory() / "BENCH_store.json"
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report: {path}")

    assert report["verify"]["equivalent"], "tiers disagree on cell bytes"
    assert report["scan_file"]["keys"] == cells
    assert report["scan_packed"]["keys"] == cells
    assert report["report_packed"]["cells"] == cells
    # The index must beat the validating directory scan by a wide margin
    # (>=10x at report scale; the floor is looser at smoke scale where
    # both sides are milliseconds).
    floor = 3.0 if current_scale() == "smoke" else 10.0
    assert report["scan_speedup"] >= floor, (
        f"packed resume scan only {report['scan_speedup']:.1f}x faster"
    )
    # Streaming report memory is flat in cell count: 10x the cells must
    # not come anywhere near 10x the peak RSS.
    assert report["report_rss_ratio_10x_cells"] < 2.0, (
        f"report RSS grew {report['report_rss_ratio_10x_cells']:.2f}x "
        "across a 10x cell-count increase"
    )


if __name__ == "__main__":
    _main()
