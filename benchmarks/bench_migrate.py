"""Live-migration benchmark: a rolling rebalance under load.

Two :class:`OnlineServer` gateways share one event loop.  A fleet is
seeded on server A and driven to completion by concurrent client
connections; once a quarter of the total frames have been served, a
controller performs a **rolling rebalance** — migrating half the fleet
to server B one handoff at a time while the drivers keep submitting
(absorbing ``draining`` rejections and re-routing sessions that moved).
Reported per fleet size:

* ``blackout_p50_ms`` / ``p99`` — per-session handoff blackout, the
  drain-to-redirect round-trip during which neither server admits the
  session's frames;
* ``frames_per_s_before`` / ``during`` / ``after`` — fleet throughput
  in the three phases, showing what a whole-fleet rebalance costs the
  sessions that are *not* moving;
* ``sessions_per_s`` — end-to-end serve throughput including the
  rebalance.

Every trace — migrated or not — is asserted **bitwise identical** to
the same (scenario, variant, N, seed) executed alone through the
reference backend: the rebalance is invisible in the numbers.

Results go to ``results/BENCH_migration.json``.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from conftest import current_scale

from repro.core.config import MclConfig
from repro.engine.backend import RunSpec
from repro.engine.reference import ReferenceBackend
from repro.maps.distance_field import DistanceField
from repro.scenarios import build_scenario
from repro.scenarios.fleet import FleetSpec
from repro.serve import AdmissionPolicy, ErrorCode, OnlineError, OnlineServer
from repro.serve.online import OnlineClient
from repro.viz.export import results_directory
from repro.viz.tables import format_table

FAMILIES = ("office", "corridor")
VARIANT = "fp32"
PARTICLES = 64
CONNECTIONS = 8
FRAMES_PER_ROUND = 8
#: The rebalance starts once this fraction of all frames is served.
#: Early enough that even the largest fleet's rolling rebalance (one
#: handoff at a time, contending with driver traffic) finishes with a
#: measurable steady-state window left after it.
REBALANCE_AT = 0.1


def migration_protocol() -> tuple[tuple[int, float], ...]:
    """((fleet size, flight seconds), ...) for the current scale.

    The big fleets fly longer: a rolling rebalance moves ``size/2``
    sessions one handoff at a time against live traffic, and the run
    must outlast it so the *after* window (post-rebalance steady state)
    is actually measurable.
    """
    if current_scale() == "smoke":
        return ((4, 6.0), (16, 6.0))
    if current_scale() == "paper":
        return ((64, 20.0), (256, 45.0))
    return ((64, 10.0), (256, 30.0))


def _traces_equal(a, b) -> bool:
    return (
        a.update_count == b.update_count
        and np.array_equal(a.timestamps, b.timestamps)
        and np.array_equal(a.position_errors, b.position_errors)
        and np.array_equal(a.yaw_errors, b.yaw_errors)
        and np.array_equal(a.estimate_trace, b.estimate_trace)
    )


async def _drive_with_rebalance(size: int, flight_s: float) -> dict:
    """Serve one fleet across two gateways with a mid-run rebalance."""
    fleet = FleetSpec.mixed(
        FAMILIES,
        variant=VARIANT,
        particle_count=PARTICLES,
        replicas=size // len(FAMILIES),
        flight_s=flight_s,
    )
    policy = AdmissionPolicy(max_sessions=max(1024, size))
    async with (
        OnlineServer(policy=policy) as server_a,
        OnlineServer(policy=policy) as server_b,
    ):
        a_addr, b_addr = server_a.address, server_b.address
        control_a = await OnlineClient.connect(*a_addr)
        control_b = await OnlineClient.connect(*b_addr)
        session_ids = await control_a.create_fleet(fleet)
        #: Which gateway currently owns each session ("a" or "b");
        #: drivers re-route on evaluation errors when this goes stale.
        home: dict[str, str] = {sid: "a" for sid in session_ids}
        remaining: dict[str, int] = {}
        for sid in session_ids:
            remaining[sid] = (await control_a.query(sid))["frames_total"]
        total_frames = sum(remaining.values())

        phase = {"name": "before"}
        frames_by_phase = {"before": 0, "during": 0, "after": 0}
        phase_clock = {"before": 0.0, "during": 0.0, "after": 0.0}

        async def locate(client_a, client_b, sid) -> str:
            for name, client in (("a", client_a), ("b", client_b)):
                try:
                    await client.query(sid)
                    return name
                except OnlineError:
                    continue
            raise RuntimeError(f"session {sid} on neither gateway")

        async def submit_group(client_a, client_b, sids) -> None:
            """Submit one round for ``sids``, absorbing migration churn.

            ``draining`` means a handoff is in flight — back off and
            retry; an evaluation error means at least one session moved
            — re-locate the batch and retry.  Rejected batches queue
            nothing, so retrying never double-submits."""
            pending = list(sids)
            for _ in range(200):
                groups: dict[str, list[str]] = {"a": [], "b": []}
                for sid in pending:
                    groups[home[sid]].append(sid)
                retry = []
                for name, client in (("a", client_a), ("b", client_b)):
                    if not groups[name]:
                        continue
                    try:
                        await client.submit_with_retry(
                            groups[name], frames=FRAMES_PER_ROUND, wait=True
                        )
                    except OnlineError as exc:
                        if exc.code not in (
                            ErrorCode.DRAINING,
                            ErrorCode.EVALUATION,
                        ):
                            raise
                        for sid in groups[name]:
                            home[sid] = await locate(client_a, client_b, sid)
                        retry.extend(groups[name])
                if not retry:
                    return
                pending = retry
                await asyncio.sleep(0.005)
            raise RuntimeError("submission starved by migration churn")

        async def run_group(owned: list[str]) -> None:
            client_a = await OnlineClient.connect(*a_addr)
            client_b = await OnlineClient.connect(*b_addr)
            async with client_a, client_b:
                while any(remaining[sid] > 0 for sid in owned):
                    live = [sid for sid in owned if remaining[sid] > 0]
                    await submit_group(client_a, client_b, live)
                    served = sum(
                        min(FRAMES_PER_ROUND, remaining[sid]) for sid in live
                    )
                    frames_by_phase[phase["name"]] += served
                    for sid in live:
                        remaining[sid] -= min(
                            FRAMES_PER_ROUND, remaining[sid]
                        )

        async def rolling_rebalance() -> list[float]:
            """Migrate half the fleet A -> B, one handoff at a time."""
            while (
                server_a.stats["frames_served"]
                + server_b.stats["frames_served"]
                < REBALANCE_AT * total_frames
            ):
                await asyncio.sleep(0.01)
            phase_clock["before"] = time.perf_counter() - serve_start
            phase["name"] = "during"
            start_during = time.perf_counter()
            blackouts = []
            movers = session_ids[::2]
            target = "%s:%d" % b_addr
            for sid in movers:
                begin = time.perf_counter()
                await control_a.migrate(sid, target=target)
                blackouts.append(time.perf_counter() - begin)
                home[sid] = "b"
            phase_clock["during"] = time.perf_counter() - start_during
            phase["name"] = "after"
            return blackouts

        connections = max(1, min(CONNECTIONS, len(session_ids)))
        groups: list[list[str]] = [[] for _ in range(connections)]
        for index, sid in enumerate(session_ids):
            groups[index % connections].append(sid)

        serve_start = time.perf_counter()
        rebalance = asyncio.ensure_future(rolling_rebalance())
        await asyncio.gather(*(run_group(group) for group in groups if group))
        blackouts = await rebalance
        serve_s = time.perf_counter() - serve_start
        phase_clock["after"] = (
            serve_s - phase_clock["before"] - phase_clock["during"]
        )

        results = {}
        for sid in session_ids:
            control = control_b if home[sid] == "b" else control_a
            results[sid] = await control.close_session(sid)
        stats = {"a": dict(server_a.stats), "b": dict(server_b.stats)}
        await control_a.close()
        await control_b.close()
        return {
            "results": results,
            "blackouts_s": blackouts,
            "serve_s": serve_s,
            "frames_by_phase": frames_by_phase,
            "phase_clock": phase_clock,
            "stats": stats,
        }


def test_migration_rolling_rebalance(benchmark):
    cells = migration_protocol()
    config = MclConfig(particle_count=PARTICLES).with_variant(VARIANT)

    scenarios = {}
    fields = {}
    for _, flight_s in cells:
        for family in FAMILIES:
            key = (family, flight_s)
            if key in scenarios:
                continue
            scenarios[key] = build_scenario(f"{family}:1:flight_s={flight_s}")
            fields[key] = DistanceField.build_for_mode(
                scenarios[key].grid, config.r_max, config.precision
            )

    def run() -> dict:
        report: dict = {
            "protocol": {
                "families": list(FAMILIES),
                "variant": VARIANT,
                "particle_count": PARTICLES,
                "fleets_flight_s": [list(cell) for cell in cells],
                "connections": CONNECTIONS,
                "frames_per_round": FRAMES_PER_ROUND,
                "rebalance_at_fraction": REBALANCE_AT,
                "migrated_fraction": 0.5,
            },
            "fleets": [],
            "equivalent": True,
        }
        backend = ReferenceBackend()
        for size, flight_s in cells:
            drive = asyncio.run(_drive_with_rebalance(size, flight_s))

            equivalent = True
            for closed in drive["results"].values():
                family = closed.spec.scenario.split(":", 1)[0]
                key = (family, flight_s)
                solo = backend.execute(
                    scenarios[key].grid,
                    [RunSpec(scenarios[key].sequence, closed.spec.seed)],
                    config,
                    fields[key],
                )[0]
                equivalent &= _traces_equal(closed.trace, solo)
            report["equivalent"] &= equivalent

            blackouts_ms = 1e3 * np.asarray(drive["blackouts_s"])
            rates = {
                name: drive["frames_by_phase"][name]
                / max(1e-9, drive["phase_clock"][name])
                for name in ("before", "during", "after")
            }
            a_stats, b_stats = drive["stats"]["a"], drive["stats"]["b"]
            report["fleets"].append(
                {
                    "sessions": size,
                    "flight_s": flight_s,
                    "migrations": int(blackouts_ms.size),
                    "serve_s": drive["serve_s"],
                    "sessions_per_s": size / drive["serve_s"],
                    "blackout_p50_ms": float(np.percentile(blackouts_ms, 50)),
                    "blackout_p99_ms": float(np.percentile(blackouts_ms, 99)),
                    "blackout_max_ms": float(blackouts_ms.max()),
                    "frames_per_s_before": rates["before"],
                    "frames_per_s_during": rates["during"],
                    "frames_per_s_after": rates["after"],
                    "frames_served_a": a_stats["frames_served"],
                    "frames_served_b": b_stats["frames_served"],
                    "migrations_failed": a_stats["migrations_failed"],
                    "equivalent": equivalent,
                }
            )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    rows = [
        [
            entry["sessions"],
            entry["migrations"],
            f"{entry['blackout_p50_ms']:.1f}ms",
            f"{entry['blackout_p99_ms']:.1f}ms",
            f"{entry['frames_per_s_before']:.0f}",
            f"{entry['frames_per_s_during']:.0f}",
            f"{entry['frames_per_s_after']:.0f}",
            f"{entry['sessions_per_s']:.1f}",
        ]
        for entry in report["fleets"]
    ]
    print(
        format_table(
            [
                "fleet",
                "moved",
                "p50 blackout",
                "p99 blackout",
                "f/s before",
                "f/s during",
                "f/s after",
                "sessions/s",
            ],
            rows,
            title=(
                f"Rolling rebalance — half the fleet A->B mid-run "
                f"({VARIANT}/N={PARTICLES}, {CONNECTIONS} connections)"
            ),
            footnote=(
                "all traces bitwise-identical to solo reference runs: "
                f"{report['equivalent']} (asserted)"
            ),
        )
    )

    path = results_directory() / "BENCH_migration.json"
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report: {path}")

    assert report["equivalent"], "migration broke the bitwise contract"
    if current_scale() != "smoke":
        assert {e["sessions"] for e in report["fleets"]} >= {64, 256}, (
            "migration bench must cover fleets 64 and 256"
        )
    for entry in report["fleets"]:
        assert entry["migrations"] == entry["sessions"] // 2
        assert entry["migrations_failed"] == 0
        assert entry["frames_served_b"] > 0, (
            "the target server never served a frame — the rebalance "
            "did not happen"
        )
        assert entry["frames_per_s_after"] > 0, (
            "the run ended before the rolling rebalance did — raise "
            "this fleet's flight seconds in migration_protocol()"
        )
