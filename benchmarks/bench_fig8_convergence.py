"""Fig. 8 — probability of convergence over time at 4096 particles.

Builds the empirical convergence-probability curve per variant from the
per-run convergence instants of the accuracy sweep (shared with the
Fig. 6/7 bench when run in the same session, recomputed otherwise).

Expected shape: all dual-sensor variants' curves rise toward ~1 within
the sequence duration; the single-ToF curve rises later and saturates
lower (paper: "the convergence is slower when using only 1 ToF sensor").
"""

from __future__ import annotations

from conftest import accuracy_protocol, current_backend

from repro.eval.aggregate import run_sweep
from repro.eval.metrics import convergence_curve
from repro.viz.ascii import line_plot
from repro.viz.export import export_series
from repro.viz.tables import format_table

VARIANTS = ["fp32", "fp321tof", "fp32qm", "fp16qm"]
PARTICLES = 4096
HORIZON_S = 60.0


def test_fig8_convergence_probability(benchmark, world, sequences, sweep_cache):
    def compute():
        cached = sweep_cache.get("accuracy")
        if cached is not None and ("fp32", PARTICLES) in cached.cells:
            return cached
        return run_sweep(
            world.grid,
            sequences,
            variants=VARIANTS,
            particle_counts=[PARTICLES],
            protocol=accuracy_protocol(),
            backend=current_backend(),
        )

    result = benchmark.pedantic(compute, rounds=1, iterations=1)

    series = {}
    rows = []
    for variant in VARIANTS:
        times = result.convergence_times(variant, PARTICLES)
        xs, probs = convergence_curve(times, horizon_s=HORIZON_S, resolution_s=2.0)
        series[variant] = (list(xs), list(probs))
        converged = [t for t in times if t is not None]
        rows.append(
            [
                variant,
                len(times),
                len(converged),
                f"{min(converged):.1f}" if converged else "n/a",
                f"{sorted(converged)[len(converged) // 2]:.1f}" if converged else "n/a",
                f"{probs[-1]:.2f}",
            ]
        )

    print()
    print(
        format_table(
            ["variant", "runs", "converged", "first (s)", "median (s)", "P(conv) @60s"],
            rows,
            title=f"Fig. 8 — convergence probability over time (N={PARTICLES})",
        )
    )
    print()
    print(
        line_plot(
            series,
            title="Fig. 8 — P(converged) vs time (s)",
            y_label="P",
        )
    )
    export_series("fig8_convergence", series, x_label="time_s", y_label="p_converged")

    # Shape: dual-sensor variants converge in most runs; single ToF is
    # the weakest curve at the horizon (one-run tolerance at quick scale).
    final_probability = {variant: series[variant][1][-1] for variant in VARIANTS}
    run_count = max(len(result.convergence_times("fp32", PARTICLES)), 1)
    tolerance = 1.0 / run_count + 1e-9
    assert final_probability["fp32"] >= 0.5
    assert final_probability["fp321tof"] <= min(
        final_probability[v] for v in ("fp32", "fp32qm", "fp16qm")
    ) + tolerance
