"""Telemetry overhead benchmark: the obs subsystem must be ~free.

The observability contract (``docs/observability.md``) has two halves:

* **zero bitwise footprint** — enabling metrics/spans/events cannot
  change a single bit of any trace, and
* **near-zero cost** — fully instrumented serving must stay within a
  few percent of the uninstrumented frame rate.

This bench pins both on the serve-online driver, the most instrumented
path in the tree (engine stage spans + scheduler tick spans + per-verb
histograms + queue gauges + the per-server stats registry all fire per
frame).  The same fleet is driven through a real socket gateway
interleaved with telemetry **disabled** and **enabled** (registry +
spans + JSONL event log), best-of-``ROUNDS`` each to shed scheduler
noise.  Asserted:

* every served trace is byte-identical across the two modes
  (``equivalent=true`` in the report), and
* the enabled frame rate is within ``MAX_OVERHEAD`` (3%) of disabled.

Results go to ``results/BENCH_obs.json``.
"""

from __future__ import annotations

import asyncio
import json
import tempfile

import numpy as np

from conftest import current_scale

from repro import obs
from repro.scenarios.fleet import FleetSpec
from repro.serve import AdmissionPolicy, OnlineServer
from repro.serve.online import drive_fleet
from repro.viz.export import results_directory
from repro.viz.tables import format_table

FAMILIES = ("office", "corridor")
VARIANT = "fp32"
PARTICLES = 64
CONNECTIONS = 4
FRAMES_PER_ROUND = 8
MAX_OVERHEAD = 0.03


def _rounds() -> int:
    """Best-of interleaved rounds per mode.

    Smoke-scale drives finish in ~50 ms, so scheduler noise per round
    is proportionally larger — buy more rounds there (they're cheap) to
    keep the best-of estimate stable on shared CI runners.
    """
    return 8 if current_scale() == "smoke" else 4


def _protocol() -> tuple[int, float]:
    """(fleet size, flight seconds) by scale."""
    if current_scale() == "smoke":
        return 8, 6.0
    if current_scale() == "paper":
        return 32, 20.0
    return 16, 10.0


def _trace_signature(trace) -> tuple:
    return (
        trace.update_count,
        np.asarray(trace.timestamps).tobytes(),
        np.asarray(trace.position_errors).tobytes(),
        np.asarray(trace.yaw_errors).tobytes(),
        np.asarray(trace.estimate_trace).tobytes(),
    )


def test_obs_overhead_and_bitwise_footprint(benchmark):
    size, flight_s = _protocol()
    fleet = FleetSpec.mixed(
        FAMILIES,
        variant=VARIANT,
        particle_count=PARTICLES,
        replicas=size // len(FAMILIES),
        flight_s=flight_s,
    )

    async def serve_fleet():
        policy = AdmissionPolicy(max_sessions=max(1024, size))
        async with OnlineServer(policy=policy) as server:
            host, port = server.address
            return await drive_fleet(
                host,
                port,
                fleet,
                connections=CONNECTIONS,
                frames_per_round=FRAMES_PER_ROUND,
            )

    def drive_once() -> tuple[float, int, dict]:
        drive = asyncio.run(serve_fleet())
        signatures = {
            sid: _trace_signature(closed.trace)
            for sid, closed in sorted(drive.results.items())
        }
        return drive.serve_s, drive.stats["frames_served"], signatures

    rounds = _rounds()

    def run() -> dict:
        best = {"off": float("inf"), "on": float("inf")}
        frames = 0
        equivalent = True
        with tempfile.TemporaryDirectory(prefix="repro-obs-") as events_dir:
            try:
                # Warm both modes once (scenario build, EDT, allocator),
                # then time interleaved so drift hits both equally.
                obs.disable()
                drive_once()
                obs.enable(events_dir)
                drive_once()
                for _ in range(rounds):
                    obs.disable()
                    off_s, frames, off_sig = drive_once()
                    obs.enable(events_dir)
                    on_s, _, on_sig = drive_once()
                    best["off"] = min(best["off"], off_s)
                    best["on"] = min(best["on"], on_s)
                    equivalent &= off_sig == on_sig
                enabled_snapshot = obs.snapshot()
            finally:
                obs.reset()

        overhead = best["on"] / best["off"] - 1.0
        spans_recorded = sum(
            s["count"] for s in enabled_snapshot["spans"].values()
        )
        return {
            "protocol": {
                "families": list(FAMILIES),
                "variant": VARIANT,
                "particle_count": PARTICLES,
                "sessions": size,
                "flight_s": flight_s,
                "connections": CONNECTIONS,
                "frames_per_round": FRAMES_PER_ROUND,
                "rounds": rounds,
            },
            "frames_served": frames,
            "disabled_s": best["off"],
            "enabled_s": best["on"],
            "frames_per_s_disabled": frames / best["off"],
            "frames_per_s_enabled": frames / best["on"],
            "overhead": overhead,
            "max_overhead": MAX_OVERHEAD,
            "engine_steps": enabled_snapshot["counters"].get(
                "engine.steps", 0
            ),
            "spans_recorded": spans_recorded,
            "equivalent": equivalent,
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        format_table(
            ["mode", "best s", "frames/s"],
            [
                ["disabled", f"{report['disabled_s']:.3f}",
                 f"{report['frames_per_s_disabled']:.0f}"],
                ["enabled", f"{report['enabled_s']:.3f}",
                 f"{report['frames_per_s_enabled']:.0f}"],
            ],
            title=(
                f"Telemetry overhead — {report['protocol']['sessions']} "
                f"sessions, {report['frames_served']} frames served, "
                f"{report['spans_recorded']} spans recorded"
            ),
            footnote=(
                f"overhead {100 * report['overhead']:+.2f}% "
                f"(budget {100 * MAX_OVERHEAD:.0f}%), "
                f"traces {'byte-identical' if report['equivalent'] else 'DIVERGED'}"
            ),
        )
    )

    path = results_directory() / "BENCH_obs.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"report written to {path}")

    assert report["equivalent"], "telemetry changed the numbers"
    assert report["overhead"] < MAX_OVERHEAD, (
        f"telemetry overhead {100 * report['overhead']:.2f}% exceeds "
        f"{100 * MAX_OVERHEAD:.0f}%"
    )
